// Composition-service contract tests.
//
// The acceptance bar (ISSUE/ROADMAP): a recorded edit stream replayed
// through the daemon yields responses bit-identical to applying the same
// edits serially through a TimingEngine directly, and the daemon's
// responses are byte-identical at jobs = 1 and jobs = 4 (per-session FIFO
// strands make each session's responses a pure function of its own request
// order). Protocol behavior -- session lifecycle, snapshot/rollback,
// incremental query stats, error reporting, the serve loop -- is pinned
// here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "service/daemon.hpp"
#include "service/socket_server.hpp"
#include "sta/timing_engine.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

constexpr int kRegisters = 140;
constexpr std::uint64_t kSeed = 11;
constexpr const char* kProfile = "svc";

// The same design the daemon's open_design builds for
// {"profile": "svc", "registers": 140, "seed": 11} -- benchgen is
// deterministic, so the test can maintain a bit-identical reference copy.
benchgen::GeneratedDesign reference_design(const lib::Library& library) {
  benchgen::DesignProfile profile;
  profile.name = kProfile;
  profile.register_cells = kRegisters;
  profile.seed = kSeed;
  return benchgen::generate_design(library, profile);
}

std::string open_request(std::int64_t id, const std::string& session) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("cmd", "open_design");
  w.kv("session", session).kv("profile", kProfile);
  w.kv("registers", kRegisters);
  w.kv("seed", static_cast<std::int64_t>(kSeed));
  w.end_object();
  return os.str();
}

/// One recorded edit, mirrored into both the daemon request stream and the
/// direct-TimingEngine reference application.
struct RecordedEdit {
  enum class Op { kMove, kSwap, kSkew, kClearSkew } op;
  netlist::CellId cell;
  double x = 0.0, y = 0.0;
  std::string variant;
  double skew = 0.0;
};

std::string edits_request(std::int64_t id, const std::string& session,
                          const std::vector<RecordedEdit>& edits) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("cmd", "apply_edits");
  w.kv("session", session);
  w.key("edits").begin_array();
  for (const RecordedEdit& e : edits) {
    w.begin_object();
    switch (e.op) {
      case RecordedEdit::Op::kMove:
        w.kv("op", "move").kv("cell", e.cell.index).kv("x", e.x).kv("y", e.y);
        break;
      case RecordedEdit::Op::kSwap:
        w.kv("op", "swap").kv("cell", e.cell.index).kv("variant", e.variant);
        break;
      case RecordedEdit::Op::kSkew:
        w.kv("op", "skew").kv("cell", e.cell.index).kv("skew", e.skew);
        break;
      case RecordedEdit::Op::kClearSkew:
        w.kv("op", "skew").kv("cell", e.cell.index).kv("clear", true);
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

std::string query_request(std::int64_t id, const std::string& session,
                          const std::vector<netlist::PinId>& pins,
                          const std::vector<netlist::CellId>& registers) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("cmd", "query_timing");
  w.kv("session", session);
  w.key("pins").begin_array();
  for (netlist::PinId pin : pins) w.value(pin.index);
  w.end_array();
  w.key("registers").begin_array();
  for (netlist::CellId reg : registers) w.value(reg.index);
  w.end_array();
  w.end_object();
  return os.str();
}

std::string simple_request(std::int64_t id, const std::string& cmd,
                           const std::string& session,
                           const std::string& name = {}) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("cmd", cmd);
  if (!session.empty()) w.kv("session", session);
  if (!name.empty()) w.kv("name", name);
  w.end_object();
  return os.str();
}

/// Feeds every line without waiting, then drains: at jobs > 1 different
/// sessions' requests genuinely race. Responses keyed by request id.
std::map<std::int64_t, std::string> run_transcript(
    service::Daemon& daemon, const std::vector<std::string>& lines) {
  std::map<std::int64_t, std::string> responses;
  std::mutex mutex;
  for (const std::string& line : lines) {
    daemon.handle(line, [&](std::string response) {
      const obs::JsonParseResult parsed = obs::parse_json(response);
      ASSERT_TRUE(parsed.ok) << response;
      const std::int64_t id = parsed.value.int_or("id", -1);
      std::lock_guard<std::mutex> lock(mutex);
      ASSERT_FALSE(responses.contains(id)) << "duplicate response id " << id;
      responses[id] = std::move(response);
    });
  }
  daemon.drain();
  return responses;
}

obs::JsonValue parse_ok(const std::string& response) {
  const obs::JsonParseResult parsed = obs::parse_json(response);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.value.bool_or("ok", false)) << response;
  return parsed.value;
}

/// Generates one topology-preserving edit burst, applying it to the
/// reference design/skew as it goes (the recorded stream is replayed
/// through the daemon afterwards).
std::vector<RecordedEdit> mutate_reference(netlist::Design& design,
                                           sta::SkewMap& skew,
                                           util::Rng& rng) {
  const auto registers = design.registers();
  const auto pick = [&] {
    return registers[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(registers.size()) - 1))];
  };
  std::vector<RecordedEdit> edits;

  const int nudges = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < nudges; ++i) {
    const netlist::CellId reg = pick();
    if (design.cell(reg).fixed) continue;
    if (rng.chance(0.2)) {
      skew.erase(reg);
      edits.push_back({RecordedEdit::Op::kClearSkew, reg});
    } else {
      const double value = rng.uniform_real(-0.1, 0.1);
      skew[reg] = value;
      RecordedEdit e{RecordedEdit::Op::kSkew, reg};
      e.skew = value;
      edits.push_back(e);
    }
  }

  if (rng.chance(0.7)) {
    const netlist::CellId reg = pick();
    netlist::Cell& cell = design.cell(reg);
    if (!cell.fixed) {
      const geom::Rect& core = design.core();
      const double x =
          std::clamp(cell.position.x + rng.uniform_real(-6.0, 6.0), core.xlo,
                     core.xhi - cell.width());
      const double y =
          std::clamp(cell.position.y + rng.uniform_real(-6.0, 6.0), core.ylo,
                     core.yhi - cell.height());
      cell.position = {x, y};
      design.notify_moved(reg);
      RecordedEdit e{RecordedEdit::Op::kMove, reg};
      e.x = x;
      e.y = y;
      edits.push_back(e);
    }
  }

  if (rng.chance(0.5)) {
    const netlist::CellId reg = pick();
    const netlist::Cell& cell = design.cell(reg);
    if (!cell.fixed) {
      auto variants =
          design.library().cells_for(cell.reg->function, cell.reg->bits);
      std::erase_if(variants, [&](const lib::RegisterCell* v) {
        return v->scan_style != cell.reg->scan_style;
      });
      if (variants.size() > 1) {
        const auto* variant =
            variants[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(variants.size()) - 1))];
        if (variant != cell.reg) design.swap_register_cell(reg, variant);
        RecordedEdit e{RecordedEdit::Op::kSwap, reg};
        e.variant = variant->name;
        edits.push_back(e);
      }
    }
  }
  return edits;
}

struct ExpectedQuery {
  std::int64_t id = 0;
  double wns = 0.0;
  double tns = 0.0;
  std::vector<netlist::PinId> pins;
  std::vector<double> pin_slack;
  std::vector<netlist::CellId> regs;
  std::vector<double> d_slack;
};

void expect_double(const obs::JsonValue& object, const char* key,
                   double want) {
  const obs::JsonValue* got = object.find(key);
  ASSERT_NE(got, nullptr) << key;
  if (std::isfinite(want)) {
    ASSERT_TRUE(got->is_number()) << key;
    // Bit-exact: JsonWriter emits shortest-round-trip doubles and the
    // reader parses them back to the same bits.
    EXPECT_EQ(got->as_number(), want) << key;
  } else {
    EXPECT_TRUE(got->is_null()) << key;  // JSON has no infinities
  }
}

// --- the acceptance test ---------------------------------------------------
//
// Build one recorded edit stream. Apply it (a) directly: reference design +
// TimingEngine, serially; (b) through a jobs=1 daemon; (c) through a jobs=4
// daemon. (b) must report exactly the direct engine's numbers and (c) must
// produce byte-identical response lines to (b).
TEST(ServiceTest, DaemonBitIdenticalToDirectEngineAtAnyJobs) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = reference_design(library);
  netlist::Design& reference = generated.design;

  sta::TimingOptions timing;
  timing.clock_period = generated.calibrated_clock_period;
  sta::TimingEngine engine(reference, timing);
  sta::SkewMap skew;
  util::Rng rng(0x5e11ce);

  const auto registers = reference.registers();
  ASSERT_GT(registers.size(), 20u);

  std::vector<std::string> transcript;
  std::vector<ExpectedQuery> expected;
  // The daemon's open_design calibrates the same clock period benchgen
  // handed the reference engine (same profile, same seed).
  transcript.push_back(open_request(1, "s"));
  std::int64_t next_id = 2;
  for (int round = 0; round < 8; ++round) {
    const std::vector<RecordedEdit> edits =
        mutate_reference(reference, skew, rng);
    transcript.push_back(edits_request(next_id++, "s", edits));

    const sta::TimingReport& report = engine.update(skew);
    ExpectedQuery q;
    q.id = next_id++;
    q.wns = report.wns();
    q.tns = report.tns();
    for (int i = 0; i < 5; ++i) {
      const netlist::CellId reg = registers[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(registers.size()) - 1))];
      const netlist::PinId pin = reference.register_d_pin(reg, 0);
      q.pins.push_back(pin);
      q.pin_slack.push_back(report.slack(pin));
      q.regs.push_back(reg);
      q.d_slack.push_back(report.register_d_slack(reference, reg));
    }
    transcript.push_back(query_request(q.id, "s", q.pins, q.regs));
    expected.push_back(std::move(q));
  }

  service::Daemon serial(library, {.jobs = 1});
  const auto serial_responses = run_transcript(serial, transcript);
  ASSERT_EQ(serial_responses.size(), transcript.size());

  // (b) vs (a): every query reports exactly the direct engine's numbers.
  for (const ExpectedQuery& q : expected) {
    ASSERT_TRUE(serial_responses.contains(q.id));
    const obs::JsonValue response = parse_ok(serial_responses.at(q.id));
    expect_double(response, "wns", q.wns);
    expect_double(response, "tns", q.tns);
    const obs::JsonValue* pins = response.find("pins");
    ASSERT_NE(pins, nullptr);
    ASSERT_EQ(pins->array().size(), q.pins.size());
    for (std::size_t i = 0; i < q.pins.size(); ++i) {
      const obs::JsonValue& entry = pins->array()[i];
      EXPECT_EQ(entry.int_or("pin", -1), q.pins[i].index);
      expect_double(entry, "slack", q.pin_slack[i]);
    }
    const obs::JsonValue* regs = response.find("registers");
    ASSERT_NE(regs, nullptr);
    ASSERT_EQ(regs->array().size(), q.regs.size());
    for (std::size_t i = 0; i < q.regs.size(); ++i) {
      const obs::JsonValue& entry = regs->array()[i];
      EXPECT_EQ(entry.int_or("cell", -1), q.regs[i].index);
      expect_double(entry, "d_slack", q.d_slack[i]);
    }
  }

  // (c) vs (b): byte-identical responses at jobs = 4.
  service::Daemon parallel(library, {.jobs = 4});
  const auto parallel_responses = run_transcript(parallel, transcript);
  ASSERT_EQ(parallel_responses.size(), serial_responses.size());
  for (const auto& [id, response] : serial_responses)
    EXPECT_EQ(parallel_responses.at(id), response) << "request id " << id;
}

// Concurrent independent sessions: the full request mix (edits, queries,
// snapshots, rollbacks, recompose, check, list_registers) interleaved
// across three sessions must produce byte-identical per-request responses
// at jobs = 1 and jobs = 4, regardless of cross-session scheduling.
TEST(ServiceTest, ConcurrentSessionsAreByteIdenticalAcrossJobs) {
  const lib::Library library = lib::make_default_library();
  std::vector<std::string> transcript;
  std::int64_t id = 1;
  const std::vector<std::string> sessions = {"a", "b", "c"};
  for (const std::string& s : sessions) transcript.push_back(open_request(id++, s));

  // Per-session reference copies only to *author* valid edits; responses
  // themselves are compared daemon-vs-daemon.
  std::map<std::string, benchgen::GeneratedDesign> refs;
  std::map<std::string, sta::SkewMap> skews;
  for (const std::string& s : sessions) refs.emplace(s, reference_design(library));
  util::Rng rng(0xc0ffee);

  for (int round = 0; round < 5; ++round) {
    for (const std::string& s : sessions) {
      auto& design = refs.at(s).design;
      const std::vector<RecordedEdit> edits =
          mutate_reference(design, skews[s], rng);
      transcript.push_back(edits_request(id++, s, edits));
      if (round == 1)
        transcript.push_back(simple_request(id++, "snapshot", s, "r1"));
      if (round == 3) {
        transcript.push_back(simple_request(id++, "rollback", s, "r1"));
        // Mirror the rollback in the reference author copy so later edits
        // stay valid (positions/variants exist in both worlds).
        // Rollback restores the session to its round-1 state; the author
        // copy diverges, but only in ways that do not invalidate edits
        // (moves clamp to the core; swaps list variants by function).
      }
      transcript.push_back(query_request(id++, s, {}, {}));
      if (round == 4) {
        transcript.push_back(simple_request(id++, "recompose_region", s));
        transcript.push_back(simple_request(id++, "check", s));
      }
    }
  }
  for (const std::string& s : sessions) {
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id++).kv("cmd", "list_registers");
    w.kv("session", s).kv("limit", 10).end_object();
    transcript.push_back(os.str());
  }

  service::Daemon serial(library, {.jobs = 1});
  service::Daemon parallel(library, {.jobs = 4});
  const auto serial_responses = run_transcript(serial, transcript);
  const auto parallel_responses = run_transcript(parallel, transcript);
  ASSERT_EQ(serial_responses.size(), transcript.size());
  ASSERT_EQ(parallel_responses.size(), transcript.size());
  for (const auto& [rid, response] : serial_responses)
    EXPECT_EQ(parallel_responses.at(rid), response) << "request id " << rid;
}

// Forced session-interleaving: one request per session per step, so at
// jobs = 4 the three FIFO strands race each other on every round, with
// snapshot/apply_edits/rollback churn landing between the racing queries.
// This is the invariant mbrc-analyze rule A3 (strand discipline) guards
// statically: Session state is only ever touched on its own strand, so
// cross-session scheduling can never leak into response bytes.
TEST(ServiceTest, StrandsStayDeterministicUnderForcedRollbackInterleaving) {
  const lib::Library library = lib::make_default_library();
  std::vector<std::string> transcript;
  std::int64_t id = 1;
  const std::vector<std::string> sessions = {"a", "b", "c"};
  std::map<std::string, benchgen::GeneratedDesign> refs;
  std::map<std::string, sta::SkewMap> skews;
  for (const std::string& s : sessions) {
    transcript.push_back(open_request(id++, s));
    refs.emplace(s, reference_design(library));
  }
  util::Rng rng(0x57a9d);
  for (int round = 0; round < 6; ++round) {
    const std::string tag = "r" + std::to_string(round);
    for (const std::string& s : sessions)
      transcript.push_back(simple_request(id++, "snapshot", s, tag));
    for (const std::string& s : sessions)
      transcript.push_back(edits_request(
          id++, s, mutate_reference(refs.at(s).design, skews[s], rng)));
    for (const std::string& s : sessions)
      transcript.push_back(query_request(id++, s, {}, {}));
    if (round % 2 == 1) {
      // Roll every session back one round while the other strands are
      // mid-query; the author copies diverge but stay edit-compatible
      // (moves clamp to the core, swaps list variants by function).
      const std::string back = "r" + std::to_string(round - 1);
      for (const std::string& s : sessions)
        transcript.push_back(simple_request(id++, "rollback", s, back));
    }
    for (const std::string& s : sessions)
      transcript.push_back(query_request(id++, s, {}, {}));
  }

  service::Daemon serial(library, {.jobs = 1});
  service::Daemon parallel(library, {.jobs = 4});
  const auto serial_responses = run_transcript(serial, transcript);
  const auto parallel_responses = run_transcript(parallel, transcript);
  ASSERT_EQ(serial_responses.size(), transcript.size());
  ASSERT_EQ(parallel_responses.size(), transcript.size());
  for (const auto& [rid, response] : serial_responses)
    EXPECT_EQ(parallel_responses.at(rid), response) << "request id " << rid;
}

// Dirty-cone repair, visible through the protocol: topology-preserving
// edits must never trigger a second full build, and repairs must touch a
// strict subset of the pins.
TEST(ServiceTest, QueriesAreServedIncrementally) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});
  parse_ok(daemon.handle_sync(open_request(1, "s")));

  const obs::JsonValue first = parse_ok(
      daemon.handle_sync(query_request(2, "s", {}, {})));
  EXPECT_EQ(first.find("engine")->int_or("full_builds", -1), 1);

  // Pick a movable register via the protocol itself.
  const obs::JsonValue regs = parse_ok(daemon.handle_sync(
      simple_request(3, "list_registers", "s")));
  std::int64_t cell = -1;
  for (const obs::JsonValue& entry : regs.find("registers")->array())
    if (!entry.bool_or("fixed", true)) {
      cell = entry.int_or("cell", -1);
      break;
    }
  ASSERT_GE(cell, 0);

  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", 4).kv("cmd", "apply_edits").kv("session", "s");
  w.key("edits").begin_array().begin_object();
  w.kv("op", "skew").kv("cell", cell).kv("skew", 0.02);
  w.end_object().end_array().end_object();
  parse_ok(daemon.handle_sync(os.str()));

  const obs::JsonValue second = parse_ok(
      daemon.handle_sync(query_request(5, "s", {}, {})));
  const obs::JsonValue* engine = second.find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->int_or("full_builds", -1), 1) << "skew edit forced a rebuild";
  EXPECT_EQ(engine->int_or("incremental_updates", -1), 1);
  EXPECT_GT(engine->int_or("repaired_pins", -1), 0);
}

// snapshot -> edits -> rollback -> the query reports exactly the
// pre-edit timing numbers (engine stats legitimately differ: rollback
// forces a rebuild).
TEST(ServiceTest, RollbackRestoresTimingExactly) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});
  parse_ok(daemon.handle_sync(open_request(1, "s")));
  const obs::JsonValue before = parse_ok(
      daemon.handle_sync(query_request(2, "s", {}, {})));
  parse_ok(daemon.handle_sync(simple_request(3, "snapshot", "s", "base")));

  const obs::JsonValue regs = parse_ok(daemon.handle_sync(
      simple_request(4, "list_registers", "s")));
  std::vector<RecordedEdit> edits;
  for (const obs::JsonValue& entry : regs.find("registers")->array()) {
    if (entry.bool_or("fixed", true)) continue;
    RecordedEdit e{RecordedEdit::Op::kSkew,
                   netlist::CellId(static_cast<std::int32_t>(
                       entry.int_or("cell", -1)))};
    e.skew = 0.07;
    edits.push_back(e);
    if (edits.size() >= 6) break;
  }
  ASSERT_FALSE(edits.empty());
  parse_ok(daemon.handle_sync(edits_request(5, "s", edits)));

  const obs::JsonValue changed = parse_ok(
      daemon.handle_sync(query_request(6, "s", {}, {})));
  EXPECT_NE(changed.number_or("tns", 0.0), before.number_or("tns", 1.0));

  parse_ok(daemon.handle_sync(simple_request(7, "rollback", "s", "base")));
  const obs::JsonValue after = parse_ok(
      daemon.handle_sync(query_request(8, "s", {}, {})));
  EXPECT_EQ(after.number_or("wns", -1), before.number_or("wns", -2));
  EXPECT_EQ(after.number_or("tns", -1), before.number_or("tns", -2));
  EXPECT_EQ(after.int_or("failing_endpoints", -1),
            before.int_or("failing_endpoints", -2));
}

TEST(ServiceTest, ProtocolErrorsAreReported) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});

  const auto expect_error = [&](const std::string& line,
                                const std::string& fragment) {
    const obs::JsonParseResult parsed =
        obs::parse_json(daemon.handle_sync(line));
    ASSERT_TRUE(parsed.ok);
    EXPECT_FALSE(parsed.value.bool_or("ok", true));
    EXPECT_NE(parsed.value.string_or("error", "").find(fragment),
              std::string::npos)
        << parsed.value.string_or("error", "");
  };

  expect_error("this is not json", "parse error");
  expect_error("[1,2,3]", "must be a JSON object");
  expect_error(R"({"id":1,"cmd":"query_timing","session":"nope"})",
               "unknown session");
  expect_error(R"({"id":2,"cmd":"open_design","session":"s"})",
               "profile or a path");
  // The failed open vacated the name; a real open now succeeds.
  parse_ok(daemon.handle_sync(open_request(3, "s")));
  expect_error(open_request(4, "s"), "already open");
  expect_error(R"({"id":5,"cmd":"frobnicate","session":"s"})", "unknown cmd");
  expect_error(
      R"({"id":6,"cmd":"apply_edits","session":"s","edits":[{"op":"move","cell":0,"x":1}]})",
      "numeric x and y");
  expect_error(
      R"({"id":7,"cmd":"apply_edits","session":"s","edits":[{"op":"swap","cell":0,"variant":"NOPE"}]})",
      "");
  expect_error(R"({"id":8,"cmd":"rollback","session":"s","name":"ghost"})",
               "unknown snapshot");
  parse_ok(daemon.handle_sync(simple_request(9, "close", "s")));
  expect_error(query_request(10, "s", {}, {}), "unknown session");
}

// A batch stopping at its first invalid edit reports the prefix applied
// and the failing index; earlier edits stay applied.
TEST(ServiceTest, EditBatchStopsAtFirstInvalidEdit) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});
  parse_ok(daemon.handle_sync(open_request(1, "s")));
  const obs::JsonValue regs = parse_ok(daemon.handle_sync(
      simple_request(2, "list_registers", "s")));
  std::int64_t movable = -1;
  for (const obs::JsonValue& entry : regs.find("registers")->array())
    if (!entry.bool_or("fixed", true)) {
      movable = entry.int_or("cell", -1);
      break;
    }
  ASSERT_GE(movable, 0);

  std::vector<RecordedEdit> edits;
  RecordedEdit good{RecordedEdit::Op::kSkew,
                    netlist::CellId(static_cast<std::int32_t>(movable))};
  good.skew = 0.01;
  edits.push_back(good);
  RecordedEdit bad{RecordedEdit::Op::kSwap,
                   netlist::CellId(static_cast<std::int32_t>(movable))};
  bad.variant = "NO_SUCH_CELL";
  edits.push_back(bad);

  const obs::JsonParseResult parsed =
      obs::parse_json(daemon.handle_sync(edits_request(3, "s", edits)));
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(parsed.value.bool_or("ok", true));
  EXPECT_EQ(parsed.value.int_or("applied", -1), 1);
  EXPECT_EQ(parsed.value.int_or("error_index", -1), 1);
}

// The NDJSON serve loop: requests in, one response line each, shutdown
// stops the loop.
TEST(ServiceTest, ServeLoopSpeaksNdjson) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});

  std::istringstream in(open_request(1, "s") + "\n" +
                        query_request(2, "s", {}, {}) + "\n" +
                        R"({"id":3,"cmd":"shutdown"})" "\n" +
                        R"({"id":4,"cmd":"ping"})" "\n");
  std::ostringstream out;
  const std::size_t served = daemon.serve(in, out);
  EXPECT_EQ(served, 3u);  // the post-shutdown line is never read
  EXPECT_TRUE(daemon.shutdown_requested());

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::int64_t> ids;
  while (std::getline(lines, line)) {
    const obs::JsonParseResult parsed = obs::parse_json(line);
    ASSERT_TRUE(parsed.ok) << line;
    EXPECT_TRUE(parsed.value.bool_or("ok", false)) << line;
    ids.push_back(parsed.value.int_or("id", -1));
  }
  EXPECT_EQ(ids, (std::vector<std::int64_t>{1, 2, 3}));
}

// recompose_region consumes the touched set: edits -> plan over the edited
// neighborhood only; a second recompose with nothing touched is empty.
TEST(ServiceTest, RecomposePlansTouchedSubgraphsOnly) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});
  parse_ok(daemon.handle_sync(open_request(1, "s")));

  const obs::JsonValue empty = parse_ok(
      daemon.handle_sync(simple_request(2, "recompose_region", "s")));
  EXPECT_EQ(empty.int_or("region_registers", -1), 0);
  EXPECT_EQ(empty.int_or("subgraphs", -1), 0);

  const obs::JsonValue regs = parse_ok(daemon.handle_sync(
      simple_request(3, "list_registers", "s")));
  std::vector<RecordedEdit> edits;
  for (const obs::JsonValue& entry : regs.find("registers")->array()) {
    if (entry.bool_or("fixed", true)) continue;
    RecordedEdit e{RecordedEdit::Op::kSkew,
                   netlist::CellId(static_cast<std::int32_t>(
                       entry.int_or("cell", -1)))};
    e.skew = 0.005;
    edits.push_back(e);
    if (edits.size() >= 4) break;
  }
  ASSERT_FALSE(edits.empty());
  parse_ok(daemon.handle_sync(edits_request(4, "s", edits)));

  const obs::JsonValue touched = parse_ok(
      daemon.handle_sync(simple_request(5, "recompose_region", "s")));
  EXPECT_EQ(touched.int_or("region_registers", -1),
            static_cast<std::int64_t>(edits.size()));
  EXPECT_GE(touched.int_or("subgraphs", -1), 1);

  const obs::JsonValue drained = parse_ok(
      daemon.handle_sync(simple_request(6, "recompose_region", "s")));
  EXPECT_EQ(drained.int_or("region_registers", -1), 0);
}

// Per-request cost knobs: absent knobs echo the session's model (the
// paper default), present knobs override for that plan only and the
// response echoes the effective values.
TEST(ServiceTest, RecomposeCostKnobsEchoEffectiveModel) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {.jobs = 1});
  parse_ok(daemon.handle_sync(open_request(1, "s")));

  const obs::JsonValue plain = parse_ok(
      daemon.handle_sync(simple_request(2, "recompose_region", "s")));
  const obs::JsonValue* defaults = plain.find("cost");
  ASSERT_NE(defaults, nullptr);
  EXPECT_EQ(defaults->number_or("alpha", -1.0), 1.0);
  EXPECT_EQ(defaults->number_or("beta", -1.0), 0.0);
  EXPECT_EQ(defaults->number_or("gamma", -1.0), 0.0);

  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", 3).kv("cmd", "recompose_region");
  w.kv("session", "s").kv("beta", 0.25).kv("gamma", 0.125);
  w.end_object();
  const obs::JsonValue priced = parse_ok(daemon.handle_sync(os.str()));
  const obs::JsonValue* cost = priced.find("cost");
  ASSERT_NE(cost, nullptr);
  // alpha was absent, so the session default survives the override.
  EXPECT_EQ(cost->number_or("alpha", -1.0), 1.0);
  EXPECT_EQ(cost->number_or("beta", -1.0), 0.25);
  EXPECT_EQ(cost->number_or("gamma", -1.0), 0.125);

  // The override is per request: the next plain plan is back on defaults.
  const obs::JsonValue again = parse_ok(
      daemon.handle_sync(simple_request(4, "recompose_region", "s")));
  EXPECT_EQ(again.find("cost")->number_or("beta", -1.0), 0.0);
}

// --- live telemetry (DESIGN.md §11) ----------------------------------------

std::vector<std::string> member_keys(const obs::JsonValue& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.members()) keys.push_back(key);
  return keys;
}

// Pins the stats verb's byte layout the way FlowReport's options echo is
// pinned: top-level key order and every gauge subtree are load-bearing for
// dashboards, so adding a metric somewhere else must show up as a diff
// here. The "counters"/"histograms" subtrees are the process-global obs
// registry -- their key SET depends on what else this process ran, so only
// their presence is pinned.
TEST(ServiceTest, StatsVerbPinsKeyLayout) {
  const lib::Library library = lib::make_default_library();
  service::Daemon daemon(library, {});
  parse_ok(daemon.handle_sync(open_request(1, "s")));
  parse_ok(daemon.handle_sync(
      query_request(2, "s", {}, {})));
  parse_ok(daemon.handle_sync(simple_request(3, "snapshot", "s", "base")));

  const obs::JsonValue stats =
      parse_ok(daemon.handle_sync("{\"id\":4,\"cmd\":\"stats\"}"));
  EXPECT_EQ(member_keys(stats),
            (std::vector<std::string>{"id", "ok", "service", "verbs", "pool",
                                      "sessions", "counters", "histograms",
                                      "trace"}));

  const obs::JsonValue* service = stats.find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(member_keys(*service),
            (std::vector<std::string>{"jobs", "sessions_open", "shutdown"}));
  EXPECT_EQ(service->int_or("jobs", -1), 1);
  EXPECT_EQ(service->int_or("sessions_open", -1), 1);

  const obs::JsonValue* verbs = stats.find("verbs");
  ASSERT_NE(verbs, nullptr);
  for (const char* verb : {"open_design", "query_timing", "snapshot"}) {
    const obs::JsonValue* entry = verbs->find(verb);
    ASSERT_NE(entry, nullptr) << verb;
    EXPECT_EQ(member_keys(*entry),
              (std::vector<std::string>{"count", "p50_us", "p95_us", "p99_us",
                                        "max_us"}))
        << verb;
    EXPECT_GE(entry->int_or("count", 0), 1) << verb;
  }

  const obs::JsonValue* pool = stats.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(member_keys(*pool),
            (std::vector<std::string>{"workers", "queue_depth",
                                      "queue_depth_peak", "active_workers"}));

  const obs::JsonValue* sessions = stats.find("sessions");
  ASSERT_NE(sessions, nullptr);
  const obs::JsonValue* gauges = sessions->find("s");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(member_keys(*gauges),
            (std::vector<std::string>{"requests", "journal_length",
                                      "snapshots", "topology_version",
                                      "engine"}));
  EXPECT_EQ(gauges->int_or("requests", -1), 3);
  EXPECT_EQ(gauges->int_or("snapshots", -1), 1);
  const obs::JsonValue* engine = gauges->find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(member_keys(*engine),
            (std::vector<std::string>{"full_builds", "incremental_updates"}));
  EXPECT_EQ(engine->int_or("full_builds", -1), 1);

  EXPECT_NE(stats.find("counters"), nullptr);
  EXPECT_NE(stats.find("histograms"), nullptr);
  const obs::JsonValue* trace = stats.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(member_keys(*trace), (std::vector<std::string>{"active", "path"}));
  EXPECT_FALSE(trace->bool_or("active", true));
}

std::map<std::string, std::int64_t> counters_of(const obs::JsonValue& stats) {
  const obs::JsonValue* counters = stats.find("counters");
  EXPECT_NE(counters, nullptr);
  std::map<std::string, std::int64_t> values;
  if (counters != nullptr)
    for (const auto& [key, value] : counters->members())
      values[key] = static_cast<std::int64_t>(value.as_number());
  return values;
}

// The determinism split the stats verb promises: its latency/gauge fields
// are measurement-only, but the obs counter DELTAS a transcript produces
// are part of the determinism contract -- identical at jobs=1 and jobs=4
// even with stats requests racing mid-transcript.
TEST(ServiceTest, StatsCounterDeltasBitIdenticalAcrossJobs) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = reference_design(library);
  sta::SkewMap skew;
  util::Rng rng(404);

  std::vector<std::string> transcript;
  std::int64_t id = 1;
  for (const char* session : {"a", "b"})
    transcript.push_back(open_request(id++, session));
  for (int burst = 0; burst < 6; ++burst) {
    for (const char* session : {"a", "b"}) {
      transcript.push_back(edits_request(
          id++, session, mutate_reference(generated.design, skew, rng)));
      transcript.push_back(query_request(id++, session, {}, {}));
    }
    if (burst == 3)  // stats racing mid-transcript must not perturb deltas
      transcript.push_back("{\"id\":" + std::to_string(id++) +
                           ",\"cmd\":\"stats\"}");
  }

  const auto run_at = [&](int jobs) {
    service::DaemonOptions options;
    options.jobs = jobs;
    service::Daemon daemon(library, options);
    const std::map<std::string, std::int64_t> before =
        counters_of(parse_ok(daemon.handle_sync("{\"id\":0,\"cmd\":\"stats\"}")));
    run_transcript(daemon, transcript);
    const std::map<std::string, std::int64_t> after =
        counters_of(parse_ok(daemon.handle_sync("{\"id\":0,\"cmd\":\"stats\"}")));
    std::map<std::string, std::int64_t> delta;
    for (const auto& [key, value] : after)
      delta[key] = value - (before.contains(key) ? before.at(key) : 0);
    return delta;
  };

  const auto serial = run_at(1);
  const auto pooled = run_at(4);
  EXPECT_EQ(serial, pooled);
  EXPECT_GT(serial.at("service.edits.applied"), 0);
}

// A live-traced run that ends via shutdown (not trace_stop) must keep the
// tail of the trace: shutdown flushes the tracer before the daemon dies.
TEST(ServiceTest, ShutdownFlushesActiveTrace) {
  const std::string trace_path =
      testing::TempDir() + "service_trace_shutdown.json";
  std::remove(trace_path.c_str());
  const lib::Library library = lib::make_default_library();
  {
    service::DaemonOptions options;
    options.jobs = 4;
    service::Daemon daemon(library, options);
    parse_ok(daemon.handle_sync(open_request(1, "s")));
    parse_ok(daemon.handle_sync("{\"id\":2,\"cmd\":\"trace_start\",\"path\":\"" +
                                trace_path + "\"}"));
    parse_ok(daemon.handle_sync(query_request(3, "s", {}, {})));
    parse_ok(daemon.handle_sync("{\"id\":4,\"cmd\":\"shutdown\"}"));
    // Flushed by the shutdown request itself, not the destructor: the
    // file is complete before the daemon object goes away.
    EXPECT_FALSE(daemon.finish_trace());
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonParseResult parsed = obs::parse_json(buffer.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const obs::JsonValue* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array().empty());
  std::remove(trace_path.c_str());
}

// Same contract when the transport tears the daemon down: a socket server
// whose accept loop exits on idle timeout flushes the live trace too.
TEST(ServiceTest, IdleTimeoutTeardownFlushesActiveTrace) {
  const std::string trace_path =
      testing::TempDir() + "service_trace_idle.json";
  std::remove(trace_path.c_str());
  const lib::Library library = lib::make_default_library();
  service::DaemonOptions options;
  options.jobs = 2;
  service::Daemon daemon(library, options);
  parse_ok(daemon.handle_sync(open_request(1, "s")));
  parse_ok(daemon.handle_sync("{\"id\":2,\"cmd\":\"trace_start\",\"path\":\"" +
                              trace_path + "\"}"));
  parse_ok(daemon.handle_sync(query_request(3, "s", {}, {})));

  service::SocketServerOptions server_options;
  server_options.path = testing::TempDir() + "service_trace_idle.sock";
  server_options.poll_interval_ms = 5;
  server_options.idle_timeout_seconds = 0.05;
  service::SocketServer server(daemon, server_options);
  ASSERT_TRUE(server.start()) << server.error();
  server.run();  // no client ever connects; returns via the idle timeout

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonParseResult parsed = obs::parse_json(buffer.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_FALSE(daemon.finish_trace());  // already flushed by the teardown
  std::remove(trace_path.c_str());
}

// The always-on flight recorder answers "what led up to this?": plant a
// placement-legality failure (two registers moved onto the same spot),
// issue a placement check, and the daemon must leave a dump whose recent
// events name the failing session's request/edit history.
TEST(ServiceTest, FlightRecorderDumpsOnPlantedCheckerFailure) {
  const std::string dump_path = testing::TempDir() + "service_flight.json";
  std::remove(dump_path.c_str());
  const lib::Library library = lib::make_default_library();
  service::DaemonOptions options;
  options.flight_dump_path = dump_path;
  service::Daemon daemon(library, options);
  parse_ok(daemon.handle_sync(open_request(1, "victim")));

  benchgen::GeneratedDesign generated = reference_design(library);
  std::vector<netlist::CellId> movable;
  for (netlist::CellId reg : generated.design.registers())
    if (!generated.design.cell(reg).fixed) movable.push_back(reg);
  ASSERT_GE(movable.size(), 2u);

  // Enough traffic that the dump can name the last >= 32 events.
  std::int64_t id = 2;
  for (int i = 0; i < 40; ++i) {
    RecordedEdit e{RecordedEdit::Op::kSkew, movable[0]};
    e.skew = 0.001 * (i + 1);
    parse_ok(daemon.handle_sync(edits_request(id++, "victim", {e})));
  }
  for (netlist::CellId reg : {movable[0], movable[1]}) {
    RecordedEdit e{RecordedEdit::Op::kMove, reg};
    e.x = generated.design.core().xlo;
    e.y = generated.design.core().ylo;
    parse_ok(daemon.handle_sync(edits_request(id++, "victim", {e})));
  }

  const std::string response = daemon.handle_sync(
      "{\"id\":99,\"cmd\":\"check\",\"session\":\"victim\","
      "\"placement\":true}");
  const obs::JsonParseResult parsed = obs::parse_json(response);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_FALSE(parsed.value.bool_or("ok", true)) << response;
  EXPECT_EQ(parsed.value.string_or("flight_dump", ""), dump_path);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << dump_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonParseResult dump = obs::parse_json(buffer.str());
  ASSERT_TRUE(dump.ok) << dump.error;
  EXPECT_EQ(dump.value.string_or("kind", ""), "flight_recorder");
  EXPECT_EQ(dump.value.string_or("trigger", ""), "checker failure");
  const obs::JsonValue* events = dump.value.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->array().size(), 32u);
  std::size_t on_strand = 0;
  for (const obs::JsonValue& event : events->array())
    if (event.string_or("detail", "").rfind("victim", 0) == 0) ++on_strand;
  EXPECT_GE(on_strand, 32u);
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace mbrc
