// mbrc-serve: the composition daemon CLI.
//
//   mbrc-serve [--jobs N] [--socket PATH] [--idle-timeout SECONDS]
//              [--check-level off|stage|paranoid]
//
// Default transport is stdio: newline-delimited JSON requests on stdin, one
// response line each on stdout (diagnostics go to stderr). With --socket,
// the daemon instead listens on a Unix-domain stream socket at PATH and
// serves every connection the same protocol; sessions are shared across
// connections. The process exits on a {"cmd": "shutdown"} request, stdin
// EOF (stdio mode), or the idle timeout (socket mode).
//
// See DESIGN.md §12 for the protocol grammar and determinism contract.
#include <cstdlib>
#include <iostream>
#include <string>

#include "lib/library.hpp"
#include "service/daemon.hpp"
#include "service/socket_server.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--jobs N] [--socket PATH] [--idle-timeout SECONDS]"
               " [--check-level off|stage|paranoid]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mbrc::service::DaemonOptions options;
  std::string socket_path;
  double idle_timeout = 0.0;
  std::string check_level;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.jobs = std::atoi(v);
    } else if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (arg == "--idle-timeout") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      idle_timeout = std::atof(v);
    } else if (arg == "--check-level") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      check_level = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.jobs < 1) options.jobs = 1;
  if (check_level == "stage") {
    options.session_defaults.check_level =
        mbrc::check::CheckLevel::kStageBoundaries;
  } else if (check_level == "paranoid") {
    options.session_defaults.check_level = mbrc::check::CheckLevel::kParanoid;
  } else if (!check_level.empty() && check_level != "off") {
    return usage(argv[0]);
  }

  const mbrc::lib::Library library = mbrc::lib::make_default_library();
  mbrc::service::Daemon daemon(library, options);

  if (!socket_path.empty()) {
    mbrc::service::SocketServerOptions server_options;
    server_options.path = socket_path;
    server_options.idle_timeout_seconds = idle_timeout;
    mbrc::service::SocketServer server(daemon, server_options);
    if (!server.start()) {
      std::cerr << "mbrc-serve: " << server.error() << '\n';
      return 1;
    }
    std::cerr << "mbrc-serve: listening on " << socket_path << " (jobs="
              << options.jobs << ")\n";
    const std::size_t connections = server.run();
    std::cerr << "mbrc-serve: served " << connections << " connection(s)\n";
    return 0;
  }

  std::cerr << "mbrc-serve: serving stdio (jobs=" << options.jobs << ")\n";
  const std::size_t requests = daemon.serve(std::cin, std::cout);
  std::cerr << "mbrc-serve: served " << requests << " request(s)\n";
  return 0;
}
