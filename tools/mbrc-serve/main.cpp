// mbrc-serve: the composition daemon CLI.
//
//   mbrc-serve [--jobs N] [--socket PATH] [--idle-timeout SECONDS]
//              [--check-level off|stage|paranoid] [--flight-dump PATH]
//
// Default transport is stdio: newline-delimited JSON requests on stdin, one
// response line each on stdout (diagnostics go to stderr). With --socket,
// the daemon instead listens on a Unix-domain stream socket at PATH and
// serves every connection the same protocol; sessions are shared across
// connections. The process exits on a {"cmd": "shutdown"} request, stdin
// EOF (stdio mode), or the idle timeout (socket mode).
//
// Crash post-mortems: the always-on flight recorder (src/obs) is dumped to
// --flight-dump PATH (default mbrc-serve-flight.json; empty string
// disables) on checker failures and protocol errors, and on SIGSEGV or
// SIGABRT via an async-signal-safe handler that also writes the dump to
// stderr before re-raising the signal.
//
// See DESIGN.md §11 for the live-telemetry model (stats, trace_start/stop,
// flight dumps) and §12 for the protocol grammar and determinism contract.
#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "lib/library.hpp"
#include "obs/flight_recorder.hpp"
#include "service/daemon.hpp"
#include "service/socket_server.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--jobs N] [--socket PATH] [--idle-timeout SECONDS]"
               " [--check-level off|stage|paranoid] [--flight-dump PATH]\n";
  return 2;
}

// Fixed storage so the signal handler never touches a std::string.
char g_flight_path[512] = "";

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    default: return "signal";
  }
}

// Async-signal-safe: the flight recorder's fd dump uses only atomics,
// snprintf into stack buffers and write(2). Re-raises with the default
// disposition so the exit status still reports the crash.
void crash_handler(int sig) {
  const char* name = signal_name(sig);
  mbrc::obs::flight::dump_to_fd(STDERR_FILENO, name);
  if (g_flight_path[0] != '\0') {
    const int fd =
        ::open(g_flight_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      mbrc::obs::flight::dump_to_fd(fd, name);
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_crash_handler(const std::string& flight_path) {
  std::strncpy(g_flight_path, flight_path.c_str(),
               sizeof(g_flight_path) - 1);
  g_flight_path[sizeof(g_flight_path) - 1] = '\0';
  std::signal(SIGSEGV, crash_handler);
  std::signal(SIGABRT, crash_handler);
  std::signal(SIGBUS, crash_handler);
}

}  // namespace

int main(int argc, char** argv) {
  mbrc::service::DaemonOptions options;
  options.flight_dump_path = "mbrc-serve-flight.json";
  std::string socket_path;
  double idle_timeout = 0.0;
  std::string check_level;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.jobs = std::atoi(v);
    } else if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (arg == "--idle-timeout") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      idle_timeout = std::atof(v);
    } else if (arg == "--check-level") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      check_level = v;
    } else if (arg == "--flight-dump") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.flight_dump_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.jobs < 1) options.jobs = 1;
  if (check_level == "stage") {
    options.session_defaults.check_level =
        mbrc::check::CheckLevel::kStageBoundaries;
  } else if (check_level == "paranoid") {
    options.session_defaults.check_level = mbrc::check::CheckLevel::kParanoid;
  } else if (!check_level.empty() && check_level != "off") {
    return usage(argv[0]);
  }

  install_crash_handler(options.flight_dump_path);
  mbrc::obs::flight::set_thread_label("serve");

  const mbrc::lib::Library library = mbrc::lib::make_default_library();
  mbrc::service::Daemon daemon(library, options);

  if (!socket_path.empty()) {
    mbrc::service::SocketServerOptions server_options;
    server_options.path = socket_path;
    server_options.idle_timeout_seconds = idle_timeout;
    mbrc::service::SocketServer server(daemon, server_options);
    if (!server.start()) {
      std::cerr << "mbrc-serve: " << server.error() << '\n';
      return 1;
    }
    std::cerr << "mbrc-serve: listening on " << socket_path << " (jobs="
              << options.jobs << ")\n";
    const std::size_t connections = server.run();
    std::cerr << "mbrc-serve: served " << connections << " connection(s)\n";
    return 0;
  }

  std::cerr << "mbrc-serve: serving stdio (jobs=" << options.jobs << ")\n";
  const std::size_t requests = daemon.serve(std::cin, std::cout);
  std::cerr << "mbrc-serve: served " << requests << " request(s)\n";
  return 0;
}
