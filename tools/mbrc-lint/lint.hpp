// mbrc-lint: a project-specific determinism & id-safety static-analysis
// pass over the flow sources.
//
// The flow's headline guarantee -- bit-identical composition results at any
// `jobs` count and across incremental-vs-fresh STA -- is enforced at runtime
// by tests and the flow fuzzer. This tool catches the hazard *classes* those
// tests hunt for at review time, with a token/line-level scanner (no libclang
// dependency):
//
//   R1  range-for / bucket iteration over std::unordered_map/unordered_set
//       (including project aliases like sta::SkewMap) whose body emits,
//       appends or accumulates into flow results. Hash iteration order is
//       implementation-defined; anything it feeds can silently reorder
//       candidate enumeration, clique ordering or emitted netlists. Use a
//       sorted key snapshot or an insertion-ordered vector side table.
//   R2  sort/stable_sort/nth_element/min_element/max_element comparators
//       whose final tie-break compares a floating-point field. Under FP ties
//       the order is not total and std::sort may permute equal elements
//       differently across implementations. End comparators with an integral
//       tie-breaker (an id, an index).
//   R3  nondeterminism sources outside src/util/rng.hpp: rand(), srand(),
//       std::random_device, std:: engine types, and streaming pointer values
//       (addresses differ per run under ASLR). The same rule scopes wall-
//       clock reads (steady_clock, system_clock, high_resolution_clock,
//       clock_gettime, gettimeofday) to the sanctioned measurement layer --
//       src/obs/, runtime/stage_timer and util/stopwatch.hpp -- so new
//       timing code cannot sprout outside the observability boundary.
//   R4  raw integer traffic that crosses the typed id spaces of
//       src/netlist/ids.hpp: constructing one id type from another id's
//       .index, arithmetic on .index inside an id constructor, or comparing
//       .index of two different id types.
//   R5  float/double accumulation (+=, -=, x = x + ...) inside lambdas passed
//       to parallel_for/parallel_transform: FP addition is not associative,
//       so an order-dependent reduction breaks the jobs bit-identity
//       guarantee. Reduce into per-task slots and fold on one thread.
//   R6  wall-clock values feeding flow decisions: a util::Stopwatch reading
//       (sw.seconds(), or a variable assigned from one) used in a relational
//       comparison. Timing is measurement-only (DESIGN.md section 11);
//       branching on it makes results machine-dependent. Recording a timing
//       into a report field (`result.total_seconds = clock.seconds()`) is
//       fine and not flagged.
//
// Suppression: `// mbrc-lint: allow(R1, reason why this is safe)` on the
// finding's line or the line directly above. The reason is mandatory.
// Grandfathered findings live in a checked-in baseline keyed on
// (rule, file, normalized line text) so unrelated edits do not invalidate
// entries; stale entries are reported so the baseline only ever shrinks.
//
// The tokenizer, suppression grammar, `file:line:col` findings and baseline
// machinery are shared with tools/mbrc-analyze via tools/common/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "source_model.hpp"

namespace mbrc::lint {

using analysis::BaselineEntry;
using analysis::Finding;
using analysis::SourceFile;
using analysis::baseline_key;
using analysis::format_baseline;
using analysis::parse_baseline;

using LintResult = analysis::Report;

struct LintOptions {
  /// Rules to run; empty means all.
  std::vector<std::string> rules;
  /// Path suffixes exempt from R3 (the sanctioned RNG lives here).
  std::vector<std::string> rng_exempt_paths = {"util/rng.hpp"};
  /// Path *substrings* exempt from the R3 clock-read check and from R6:
  /// the observability layer and the stage timer are the sanctioned owners
  /// of wall-clock time, and they legitimately read and compare it.
  std::vector<std::string> clock_exempt_paths = {
      "src/obs/", "runtime/stage_timer", "util/stopwatch.hpp"};
};

/// Runs all enabled rules over the file set. Alias and field-type tables
/// (e.g. `using SkewMap = std::unordered_map<...>`, `double x;`) are built
/// across the whole set first, so a loop in one file over an alias declared
/// in another is still caught.
LintResult run_lint(const std::vector<SourceFile>& files,
                    const LintOptions& options = {},
                    const std::vector<BaselineEntry>& baseline = {});

}  // namespace mbrc::lint
