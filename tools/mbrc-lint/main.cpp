// mbrc-lint CLI: the shared static-analysis driver (tools/common/driver.hpp)
// around the determinism rule engine. Prints `file:line:col: RULE: message`.
#include "driver.hpp"
#include "lint.hpp"

int main(int argc, char** argv) {
  mbrc::analysis::ToolSpec spec;
  spec.name = "mbrc-lint";
  spec.rules_example = "R1,R2,...";
  spec.run = [](const std::vector<mbrc::analysis::SourceFile>& files,
                const std::vector<std::string>& rules,
                const std::vector<mbrc::analysis::BaselineEntry>& baseline) {
    mbrc::lint::LintOptions options;
    options.rules = rules;
    return mbrc::lint::run_lint(files, options, baseline);
  };
  return mbrc::analysis::run_tool(spec, argc, argv);
}
