#include "lint.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mbrc::lint {

namespace {

using analysis::FileScan;
using analysis::TokKind;
using analysis::Token;
using analysis::is;
using analysis::is_ident;
using analysis::match;
using analysis::skip_angles;
using analysis::tokenize;

bool fp_member_ref(const std::vector<Token>& t, std::size_t i,
                   const std::set<std::string>& fp_names) {
  if (!is_ident(t, i) || !fp_names.contains(t[i].text)) return false;
  if (i == 0) return true;  // plain variable
  const std::string& prev = t[i - 1].text;
  // Either a member access (.slack / ->weight) or a plain variable.
  return prev == "." || prev == "->" ||
         (t[i - 1].kind != TokKind::kIdent);
}

const std::set<std::string> kEmitCalls = {
    "push_back", "emplace_back", "insert", "emplace", "append",
    "add", "add_edge", "add_node", "push", "write"};

const std::set<std::string> kSortCalls = {
    "sort", "stable_sort", "nth_element", "partial_sort",
    "min_element", "max_element"};

const std::set<std::string> kRngIdents = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};

const std::set<std::string> kIdTypes = {"CellId", "PinId", "NetId"};

const std::set<std::string> kParallelCalls = {"parallel_for",
                                              "parallel_transform"};

// Wall-clock sources (R3 clock scoping). Duration constructors like
// std::chrono::seconds(0) or microseconds(200) are deliberately absent:
// they name spans of time, not reads of the clock.
const std::set<std::string> kClockIdents = {
    "steady_clock", "system_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday"};

// ---------------------------------------------------------------------------
// Cross-file tables.
// ---------------------------------------------------------------------------

struct GlobalTables {
  std::set<std::string> unordered_aliases;  // e.g. SkewMap
  std::set<std::string> fp_names;           // double/float fields & variables
  // Unordered container *members* (trailing-underscore names only): they are
  // declared in headers but iterated in the matching .cpp, so they must be
  // visible across files. Restricting the global table to the member naming
  // convention keeps common local names (`partitions`, `bins`) from leaking
  // between unrelated translation units.
  std::set<std::string> unordered_vars;
};

bool is_unordered(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

void collect_global(const FileScan& scan, GlobalTables& g) {
  const auto& t = scan.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // using NAME = [std::]unordered_map<...>
    if (is(t, i, "using") && is_ident(t, i + 1) && is(t, i + 2, "=")) {
      std::size_t j = i + 3;
      if (is(t, j, "std") && is(t, j + 1, "::")) j += 2;
      if (j < t.size() && is_unordered(t[j].text))
        g.unordered_aliases.insert(t[i + 1].text);
    }
    // double NAME / float NAME where NAME is a variable or field (the next
    // token rules out function declarations `double name(...)`).
    if ((is(t, i, "double") || is(t, i, "float")) && is_ident(t, i + 1)) {
      const std::string& next = i + 2 < t.size() ? t[i + 2].text : ";";
      if (next == ";" || next == "=" || next == "," || next == ")" ||
          next == "{" || next == ":")
        g.fp_names.insert(t[i + 1].text);
    }
  }
}

bool decl_terminator(const std::string& text) {
  return text == ";" || text == "=" || text == "," || text == ")" ||
         text == "{" || text == ":" || text == "(";
}

/// Declarations of unordered containers (direct or alias-typed), appended to
/// `out`: `[std::]unordered_map<...> [&|*] NAME` and `ALIAS [&|*] NAME`.
void collect_unordered_decls(const std::vector<Token>& t,
                             const std::set<std::string>& aliases,
                             std::set<std::string>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && is_unordered(t[i].text) &&
        is(t, i + 1, "<")) {
      std::size_t j = skip_angles(t, i + 1);
      while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
      if (is_ident(t, j)) out.insert(t[j].text);
    }
    if (t[i].kind == TokKind::kIdent && aliases.contains(t[i].text)) {
      std::size_t j = i + 1;
      while (is(t, j, "&") || is(t, j, "*")) ++j;
      if (is_ident(t, j) && j + 1 < t.size() &&
          decl_terminator(t[j + 1].text) && t[j + 1].text != "(")
        out.insert(t[j].text);
    }
  }
}

/// Second global pass (needs aliases from every file before it can resolve
/// alias-typed members, so it cannot be folded into collect_global). Only
/// member-convention names (trailing underscore) go global.
void collect_global_vars(const FileScan& scan, GlobalTables& g) {
  std::set<std::string> all;
  collect_unordered_decls(scan.tokens, g.unordered_aliases, all);
  for (const std::string& name : all)
    if (name.ends_with('_')) g.unordered_vars.insert(name);
}

struct VarTables {
  std::set<std::string> unordered_vars;      // locals/params in this file
  std::set<std::string> unordered_iters;     // iterators from NAME.find(...)
  std::map<std::string, std::string> id_vars;  // name -> CellId/PinId/NetId
};

VarTables collect_vars(const FileScan& scan, const GlobalTables& g) {
  VarTables v;
  const auto& t = scan.tokens;
  collect_unordered_decls(t, g.unordered_aliases, v.unordered_vars);
  for (std::size_t i = 0; i < t.size(); ++i) {
    // IT = NAME.find(  -- iterator into an unordered container
    if (is_ident(t, i) &&
        (v.unordered_vars.contains(t[i].text) ||
         g.unordered_vars.contains(t[i].text)) &&
        is(t, i + 1, ".") && is(t, i + 2, "find") && is(t, i + 3, "(") &&
        i >= 2 && is(t, i - 1, "=") && is_ident(t, i - 2))
      v.unordered_iters.insert(t[i - 2].text);
    // CellId/PinId/NetId [&] NAME  (declaration, not construction)
    if (t[i].kind == TokKind::kIdent && kIdTypes.contains(t[i].text)) {
      std::size_t j = i + 1;
      while (is(t, j, "&")) ++j;
      if (is_ident(t, j) && j + 1 < t.size() &&
          decl_terminator(t[j + 1].text) && t[j + 1].text != "(")
        v.id_vars.emplace(t[j].text, t[i].text);
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Rule engine.
// ---------------------------------------------------------------------------

struct Engine {
  const GlobalTables& global;
  const LintOptions& options;
  std::vector<Finding>& findings;
  std::vector<Finding>& bad_suppressions;

  const FileScan* scan = nullptr;
  VarTables vars;

  bool rule_enabled(const char* rule) const {
    return options.rules.empty() ||
           std::find(options.rules.begin(), options.rules.end(), rule) !=
               options.rules.end();
  }

  void emit(const char* rule, const Token& at, std::string message) {
    if (!rule_enabled(rule)) return;
    Finding f;
    f.rule = rule;
    f.path = scan->file->path;
    f.line = at.line;
    f.col = at.col;
    f.message = std::move(message);
    analysis::finish_finding(f, *scan, "mbrc-lint", bad_suppressions);
    findings.push_back(std::move(f));
  }

  // --- R1: unordered iteration feeding results -----------------------------

  bool body_emits(std::size_t begin, std::size_t end) const {
    const auto& t = scan->tokens;
    for (std::size_t i = begin; i < end; ++i) {
      if (t[i].kind == TokKind::kIdent && kEmitCalls.contains(t[i].text) &&
          is(t, i + 1, "("))
        return true;
      if (t[i].text == "+=" || t[i].text == "<<") return true;
    }
    return false;
  }

  void rule_r1() {
    const auto& t = scan->tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is(t, i, "for") || !is(t, i + 1, "(")) continue;
      const std::size_t close = match(t, i + 1, "(", ")");
      // Range-for: a single ':' at paren depth 1.
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "(" || t[j].text == "[") ++depth;
        if (t[j].text == ")" || t[j].text == "]") --depth;
        if (t[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;
      std::string container;
      for (std::size_t j = colon + 1; j + 1 < close; ++j) {
        if (!is_ident(t, j)) continue;
        if (vars.unordered_vars.contains(t[j].text) ||
            global.unordered_vars.contains(t[j].text) ||
            vars.unordered_iters.contains(t[j].text)) {
          container = t[j].text;
          break;
        }
      }
      if (container.empty()) continue;
      // Body extent: braced block or single statement.
      std::size_t body_begin = close, body_end;
      if (is(t, close, "{")) {
        body_end = match(t, close, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < t.size() && t[body_end].text != ";") ++body_end;
      }
      if (!body_emits(body_begin, body_end)) continue;
      emit("R1", t[i],
           "iteration over unordered container '" + container +
               "' emits into flow results; hash order is "
               "implementation-defined -- iterate a sorted snapshot or an "
               "insertion-ordered vector instead");
    }
  }

  // --- R2: FP-only comparator tie-breaks -----------------------------------

  /// Is the identifier at `k` a floating-point operand inside a comparator?
  /// Member accesses (`.slack`, `->weight`) resolve against the global FP
  /// field table; plain identifiers only count when the lambda's own
  /// parameter list declares them double/float, which keeps generic names
  /// like `a`/`b` from inheriting FP-ness from unrelated declarations.
  bool cmp_fp_operand(std::size_t k,
                      const std::set<std::string>& lambda_fp) const {
    const auto& t = scan->tokens;
    if (!is_ident(t, k)) return false;
    if (k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->"))
      return global.fp_names.contains(t[k].text);
    return lambda_fp.contains(t[k].text);
  }

  void rule_r2() {
    const auto& t = scan->tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !kSortCalls.contains(t[i].text) ||
          !is(t, i + 1, "("))
        continue;
      const std::size_t close = match(t, i + 1, "(", ")");
      // The comparator is the last lambda argument.
      std::size_t lambda = t.size();
      for (std::size_t j = i + 2; j < close; ++j)
        if (t[j].text == "[" &&
            (t[j - 1].text == "," || t[j - 1].text == "("))
          lambda = j;
      if (lambda == t.size()) continue;
      std::size_t j = match(t, lambda, "[", "]");
      std::set<std::string> lambda_fp;
      if (is(t, j, "(")) {
        const std::size_t params_end = match(t, j, "(", ")");
        for (std::size_t k = j + 1; k + 1 < params_end; ++k)
          if ((is(t, k, "double") || is(t, k, "float")) && is_ident(t, k + 1))
            lambda_fp.insert(t[k + 1].text);
        j = params_end;
      }
      while (j < close && t[j].text != "{") ++j;
      if (j >= close) continue;
      const std::size_t body_end = match(t, j, "{", "}");

      // The comparator's *last* return decides ties: flag when it compares
      // floating-point data with no integral comparison anywhere in the
      // expression (a correct total order ends on an integral key).
      std::size_t last_ret = t.size();
      for (std::size_t k = j; k < body_end; ++k)
        if (is(t, k, "return")) last_ret = k;
      if (last_ret == t.size()) continue;
      std::size_t ret_end = last_ret;
      while (ret_end < body_end && t[ret_end].text != ";") ++ret_end;

      bool compares = false;
      bool integral_cmp = false;
      std::string fp_field;
      for (std::size_t k = last_ret + 1; k < ret_end; ++k) {
        const std::string& x = t[k].text;
        if (x == "<" || x == ">" || x == "<=" || x == ">=") {
          compares = true;
          // `a < b` on non-FP operands is an integral tie-break: both
          // neighbors are identifiers and neither classifies floating-point.
          if (is_ident(t, k - 1) && is_ident(t, k + 1) &&
              !cmp_fp_operand(k - 1, lambda_fp) &&
              !cmp_fp_operand(k + 1, lambda_fp))
            integral_cmp = true;
        }
        if (cmp_fp_operand(k, lambda_fp)) fp_field = t[k].text;
      }
      if (!compares || fp_field.empty() || integral_cmp) continue;
      emit("R2", t[last_ret],
           "comparator for '" + t[i].text +
               "' breaks final ties on floating-point '" + fp_field +
               "'; the order is not total under FP ties -- add an integral "
               "tie-breaker (an id or index)");
    }
  }

  // --- R3: nondeterminism sources outside util/rng.hpp ---------------------

  bool r3_exempt() const {
    for (const std::string& suffix : options.rng_exempt_paths) {
      const std::string& p = scan->file->path;
      if (p.size() >= suffix.size() &&
          p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0)
        return true;
    }
    return false;
  }

  /// Clock exemption is a substring match (unlike the RNG suffix match):
  /// it names whole directories (src/obs/) as well as file stems
  /// (runtime/stage_timer covers both .hpp and .cpp).
  bool clock_exempt() const {
    for (const std::string& part : options.clock_exempt_paths)
      if (scan->file->path.find(part) != std::string::npos) return true;
    return false;
  }

  void rule_r3() {
    const bool rng_ok = r3_exempt();
    const bool clock_ok = clock_exempt();
    const auto& t = scan->tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent && !clock_ok &&
          kClockIdents.contains(t[i].text))
        emit("R3", t[i],
             "reads the wall clock via '" + t[i].text +
                 "' -- wall-clock time is measurement-only and confined to "
                 "src/obs/, runtime/stage_timer and util/stopwatch.hpp "
                 "(DESIGN.md section 11); time a region with "
                 "runtime::StageTimer or obs::Span instead");
      if (rng_ok) continue;
      if (t[i].kind == TokKind::kIdent) {
        if ((t[i].text == "rand" || t[i].text == "srand") &&
            is(t, i + 1, "(") && !is(t, i - 1, ".") && !is(t, i - 1, "->"))
          emit("R3", t[i],
               "call to '" + t[i].text +
                   "()' -- all randomness must come from util::Rng "
                   "(src/util/rng.hpp) so runs are reproducible");
        if (kRngIdents.contains(t[i].text))
          emit("R3", t[i],
               "use of 'std::" + t[i].text +
                   "' -- all randomness must come from util::Rng "
                   "(src/util/rng.hpp) so runs are reproducible");
      }
      // Streaming a pointer value: addresses differ run to run under ASLR.
      if (t[i].text == "<<" && is(t, i + 1, "&") && is_ident(t, i + 2))
        emit("R3", t[i],
             "streams the address of '" + t[i + 2].text +
                 "'; pointer values differ per run -- stream an id or a "
                 "name instead");
      if (t[i].text == "<<" && is(t, i + 1, "static_cast") &&
          is(t, i + 2, "<")) {
        const std::size_t end = skip_angles(t, i + 2);
        for (std::size_t k = i + 2; k < end; ++k)
          if (t[k].text == "void")
            emit("R3", t[i],
                 "streams a pointer cast to void*; addresses differ per "
                 "run -- stream an id or a name instead");
      }
    }
  }

  // --- R4: raw arithmetic crossing typed id spaces -------------------------

  void rule_r4() {
    const auto& t = scan->tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      // TId{...} / TId(...) construction whose argument reaches into a
      // different id space via `.index`, or does arithmetic on `.index`.
      if (t[i].kind == TokKind::kIdent && kIdTypes.contains(t[i].text) &&
          (is(t, i + 1, "{") || is(t, i + 1, "("))) {
        const bool brace = is(t, i + 1, "{");
        const std::size_t end = brace ? match(t, i + 1, "{", "}")
                                      : match(t, i + 1, "(", ")");
        bool has_index = false, has_arith = false;
        std::string cross;
        for (std::size_t k = i + 2; k + 1 < end; ++k) {
          if (is_ident(t, k) && is(t, k + 1, ".") && is(t, k + 2, "index")) {
            has_index = true;
            const auto it = vars.id_vars.find(t[k].text);
            if (it != vars.id_vars.end() && it->second != t[i].text)
              cross = t[k].text + " (" + it->second + ")";
          }
          const std::string& x = t[k].text;
          if (x == "+" || x == "-" || x == "*" || x == "/" || x == "%")
            has_arith = true;
        }
        if (!cross.empty())
          emit("R4", t[i],
               "constructs " + t[i].text + " from the .index of " + cross +
                   " -- crossing typed id spaces defeats the Id<Tag> "
                   "protection of netlist/ids.hpp");
        else if (has_index && has_arith)
          emit("R4", t[i],
               "constructs " + t[i].text +
                   " from raw arithmetic on an id's .index -- derive ids "
                   "from the owning container, not index math");
      }
      // VAR1.index <op> VAR2.index across different id types.
      if (is_ident(t, i) && is(t, i + 1, ".") && is(t, i + 2, "index") &&
          i + 3 < t.size()) {
        const std::string& op = t[i + 3].text;
        if ((op == "==" || op == "!=" || op == "<" || op == ">" ||
             op == "<=" || op == ">=") &&
            is_ident(t, i + 4) && is(t, i + 5, ".") && is(t, i + 6, "index")) {
          const auto a = vars.id_vars.find(t[i].text);
          const auto b = vars.id_vars.find(t[i + 4].text);
          if (a != vars.id_vars.end() && b != vars.id_vars.end() &&
              a->second != b->second)
            emit("R4", t[i],
                 "compares .index across id spaces: " + t[i].text + " (" +
                     a->second + ") vs " + t[i + 4].text + " (" + b->second +
                     ") -- distinct Id<Tag> types are never comparable");
        }
      }
    }
  }

  // --- R5: FP accumulation inside parallel lambdas -------------------------

  void rule_r5() {
    const auto& t = scan->tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent ||
          !kParallelCalls.contains(t[i].text) || !is(t, i + 1, "("))
        continue;
      const std::size_t close = match(t, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].text != "[" ||
            !(t[j - 1].text == "," || t[j - 1].text == "("))
          continue;
        std::size_t k = match(t, j, "[", "]");
        if (is(t, k, "(")) k = match(t, k, "(", ")");
        while (k < close && t[k].text != "{") ++k;
        if (k >= close) continue;
        const std::size_t body_end = match(t, k, "{", "}");
        for (std::size_t m = k; m < body_end; ++m) {
          if ((t[m].text == "+=" || t[m].text == "-=") && m > 0 &&
              fp_member_ref(t, m - 1, global.fp_names))
            emit("R5", t[m],
                 "accumulates into floating-point '" + t[m - 1].text +
                     "' inside a " + t[i].text +
                     " lambda; FP addition is not associative, so the "
                     "reduction order leaks into the result -- write "
                     "per-task slots and fold them on one thread");
          // x = x + ... with x floating-point.
          if (is(t, m, "=") && m > 0 && is_ident(t, m - 1) &&
              is_ident(t, m + 1) && t[m - 1].text == t[m + 1].text &&
              (is(t, m + 2, "+") || is(t, m + 2, "-")) &&
              global.fp_names.contains(t[m - 1].text))
            emit("R5", t[m],
                 "accumulates into floating-point '" + t[m - 1].text +
                     "' inside a " + t[i].text +
                     " lambda; FP addition is not associative, so the "
                     "reduction order leaks into the result -- write "
                     "per-task slots and fold them on one thread");
        }
        j = body_end;
      }
    }
  }

  // --- R6: wall-clock values feeding flow decisions ------------------------

  void rule_r6() {
    if (clock_exempt()) return;
    const auto& t = scan->tokens;

    // Stopwatch-typed variables declared in this file (locals, members,
    // reference parameters).
    std::set<std::string> watches;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is(t, i, "Stopwatch")) continue;
      std::size_t j = i + 1;
      while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
      if (is_ident(t, j) && j + 1 < t.size() &&
          decl_terminator(t[j + 1].text) && t[j + 1].text != "(")
        watches.insert(t[j].text);
    }
    if (watches.empty()) return;

    // Plain variables assigned from a stopwatch reading. Member accesses on
    // the left (`result.total_seconds = clock.seconds()`) are the sanctioned
    // report-recording pattern and stay untracked.
    std::set<std::string> timing_vars;
    for (std::size_t i = 0; i + 5 < t.size(); ++i) {
      if (is_ident(t, i) && is(t, i + 1, "=") && is_ident(t, i + 2) &&
          watches.contains(t[i + 2].text) && is(t, i + 3, ".") &&
          is(t, i + 4, "seconds") && is(t, i + 5, "(") &&
          (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->")))
        timing_vars.insert(t[i].text);
    }

    // `SW.seconds()` whose closing paren sits at `close`.
    const auto seconds_call_ending_at = [&](std::size_t close) -> std::string {
      if (close < 4 || t[close].text != ")" || t[close - 1].text != "(" ||
          t[close - 2].text != "seconds" || t[close - 3].text != ".")
        return {};
      if (is_ident(t, close - 4) && watches.contains(t[close - 4].text))
        return t[close - 4].text;
      return {};
    };

    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      const std::string& op = t[i].text;
      if (op != "<" && op != ">" && op != "<=" && op != ">=") continue;
      std::string culprit = seconds_call_ending_at(i - 1);
      if (culprit.empty() && is_ident(t, i - 1) &&
          timing_vars.contains(t[i - 1].text))
        culprit = t[i - 1].text;
      if (culprit.empty() && is_ident(t, i + 1) &&
          timing_vars.contains(t[i + 1].text))
        culprit = t[i + 1].text;
      if (culprit.empty() && is_ident(t, i + 1) &&
          watches.contains(t[i + 1].text) && is(t, i + 2, ".") &&
          is(t, i + 3, "seconds"))
        culprit = t[i + 1].text;
      if (culprit.empty()) continue;
      emit("R6", t[i],
           "compares a wall-clock value from '" + culprit +
               "'; timing is measurement-only and must never feed flow "
               "results (DESIGN.md section 11) -- branch on deterministic "
               "work counters (node budgets, iteration counts) instead");
    }
  }

  void run(const FileScan& file_scan) {
    scan = &file_scan;
    vars = collect_vars(file_scan, global);
    rule_r1();
    rule_r2();
    rule_r3();
    rule_r4();
    rule_r5();
    rule_r6();
  }
};

}  // namespace

LintResult run_lint(const std::vector<SourceFile>& files,
                    const LintOptions& options,
                    const std::vector<BaselineEntry>& baseline) {
  LintResult result;

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const SourceFile& file : files) scans.push_back(tokenize(file));

  GlobalTables global;
  for (const FileScan& scan : scans) collect_global(scan, global);
  for (const FileScan& scan : scans) collect_global_vars(scan, global);

  Engine engine{global, options, result.findings, result.bad_suppressions,
                nullptr, {}};
  for (const FileScan& scan : scans) engine.run(scan);

  analysis::apply_baseline(result, baseline);
  return result;
}

}  // namespace mbrc::lint
