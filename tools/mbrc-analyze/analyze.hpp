// mbrc-analyze: a scope- and dataflow-aware lifetime & concurrency analyzer
// over the flow sources (no libclang dependency).
//
// Where mbrc-lint pattern-matches single statements, this tool parses each
// translation unit into a lightweight model -- functions with nested scopes,
// per-scope declarations, lambda capture lists, and a cross-file call
// summary -- and enforces four whole-project contracts the token scanner
// cannot see:
//
//   A1  arena-escape: pointers, references and iterators derived from
//       Arena/ArenaVector storage (src/util/arena.hpp) that escape the
//       function that derived them -- returned, assigned to an out-param or
//       member, inserted into an escaping container, or captured by a task
//       lambda. The per-worker arenas are reset per subgraph, so any raw
//       view that outlives the deriving scope reads poisoned memory.
//   A2  task-capture lifetime: lambdas handed to deferred execution
//       (ThreadPool::submit/async, and any function the call summary proves
//       forwards its callable into one -- Daemon::post, Daemon::handle)
//       whose by-reference captures name locals of the submitting scope,
//       when no join/wait dominates every exit from that scope. A wait that
//       exists but sits behind throwing calls (or behind a loop back-edge
//       that can throw) does not dominate: exceptional unwind skips it and
//       the task dangles. Declaring a recognized RAII wait guard
//       (runtime::FutureDrain, service::DrainGuard) before the submission
//       covers all exits and silences the rule.
//   A3  strand discipline: service::Session state touched outside the
//       session's FIFO-strand entry points (Session:: member functions,
//       Daemon::execute/do_open/do_close/run_strand, and lambdas posted via
//       Daemon::post). Session fields are deliberately unsynchronized; the
//       strand is the lock.
//   A4  journal bypass: direct netlist::Design mutations reachable without
//       a journal append on the path -- `cell.position` writes in a
//       function with no notify_moved call, pin `.net` rewires and register
//       variant writes outside the Design API. These silently stale the
//       incremental TimingEngine against the run_sta oracle.
//
// Suppression: `// mbrc-analyze: allow(A1, reason)` on the line or the line
// above; the reason is mandatory. Baseline, suppression grammar and the
// tokenizer are shared with mbrc-lint (tools/common/).
#pragma once

#include <string>
#include <vector>

#include "source_model.hpp"

namespace mbrc::analyze {

using analysis::BaselineEntry;
using analysis::Finding;
using analysis::SourceFile;

using AnalyzeResult = analysis::Report;

struct AnalyzeOptions {
  /// Rules to run; empty means all of A1..A4.
  std::vector<std::string> rules;
  /// Path substrings where A4 does not apply: the journaled-edit API's own
  /// implementation legitimately writes cells and appends to the journal.
  std::vector<std::string> journal_exempt_paths = {"netlist/design."};
  /// Path suffixes where A1 does not apply: the arena implementation itself.
  std::vector<std::string> arena_exempt_paths = {"util/arena.hpp"};
  /// Path substring gating A3 (strand discipline is a service-layer
  /// contract).
  std::vector<std::string> strand_paths = {"service/"};
  /// Classes whose fields are strand-confined (A3).
  std::vector<std::string> strand_classes = {"Session"};
  /// Functions allowed to touch strand-confined state (A3). Session::
  /// members are always allowed.
  std::vector<std::string> strand_entry_points = {"execute", "do_open",
                                                  "do_close", "run_strand"};
  /// RAII types whose construction counts as a wait dominating every exit
  /// of the scope (A2).
  std::vector<std::string> wait_guard_types = {"FutureDrain", "DrainGuard"};
};

/// Runs all enabled rules over the file set. The call summary (which
/// functions forward callables into deferred execution) and class field
/// tables are built across the whole set first, so a lambda handed to
/// Daemon::handle in one file is still traced into ThreadPool::submit
/// declared in another.
AnalyzeResult run_analyze(const std::vector<SourceFile>& files,
                          const AnalyzeOptions& options = {},
                          const std::vector<BaselineEntry>& baseline = {});

}  // namespace mbrc::analyze
