// mbrc-analyze rule engine. Builds a lightweight scope/dataflow model of
// each translation unit -- functions with nested scopes, per-scope
// declarations, lambda capture lists -- plus a cross-file spawn summary
// (which functions forward callables into deferred execution), then runs
// the four A-rules over the model. See analyze.hpp for the rule catalogue.
#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace mbrc::analyze {
namespace {

using analysis::FileScan;
using analysis::Token;
using analysis::TokKind;
using analysis::is;
using analysis::is_ident;
using analysis::match;
using analysis::skip_angles;

// ---------------------------------------------------------------------------
// Model types.
// ---------------------------------------------------------------------------

struct Capture {
  std::string name;     // empty for a default capture
  bool by_ref = false;
  bool is_default = false;
  bool is_this = false;
  std::size_t tok = 0;  // token index of the capture's name (or '&'/'=')
};

struct LambdaInfo {
  std::size_t intro = 0;        // '[' token index
  std::size_t intro_close = 0;  // index past ']'
  std::size_t body_open = 0;    // '{' token index
  std::size_t body_close = 0;   // index past the matching '}'
  std::vector<Capture> captures;

  bool has_ref_capture() const {
    for (const auto& c : captures)
      if (c.by_ref) return true;
    return false;
  }
};

struct Decl {
  std::string name;
  std::vector<std::string> type;           // identifier tokens of the type
  std::vector<std::string> template_args;  // identifiers inside <...>
  bool is_ref = false;
  bool is_ptr = false;
  bool is_auto = false;
  std::size_t name_tok = 0;
  std::size_t init_begin = 0, init_end = 0;  // [begin, end); empty when 0,0
  int lambda_index = -1;  // lambda that initializes this decl, if any

  bool type_contains(const std::string& needle) const {
    for (const auto& s : type)
      if (s.find(needle) != std::string::npos) return true;
    for (const auto& s : template_args)
      if (s.find(needle) != std::string::npos) return true;
    return false;
  }
};

struct ScopeNode {
  std::size_t open = 0, close = 0;  // '{' index, index past '}'
  bool is_loop = false;
  // For loops: '(' of the condition/header -- the back-edge re-executes it,
  // so the A2 exceptional-gap scan must cover it too. Equals `open` when
  // there is no header (do-while bodies).
  std::size_t head = 0;
  int parent = -1;
};

struct FunctionInfo {
  std::string name;
  std::string qualifier;  // explicit or enclosing class; "" for free
  std::size_t name_tok = 0;
  std::size_t params_open = 0, params_close = 0;
  std::size_t body_open = 0, body_close = 0;
  std::vector<Decl> params;
  std::vector<Decl> locals;
  std::vector<std::string> callable_params;
  std::vector<ScopeNode> scopes;  // scopes[0] is the body
};

struct ClassRange {
  std::string name;
  std::size_t open = 0, close = 0;
};

struct FileModel {
  FileScan scan;
  std::vector<LambdaInfo> lambdas;
  std::vector<FunctionInfo> functions;
  std::vector<ClassRange> classes;
  // class name -> field names (collected at class-body depth 1)
  std::map<std::string, std::vector<std::string>> class_fields;
};

struct Project {
  std::vector<FileModel> files;
  // Function names whose callable arguments run deferred (transitively
  // reaches ThreadPool::submit/async with no wait on the forwarding path).
  std::set<std::string> spawning;
  std::map<std::string, std::vector<std::string>> class_fields;
};

// ---------------------------------------------------------------------------
// Token classification helpers.
// ---------------------------------------------------------------------------

bool is_keyword(const std::string& s) {
  static const std::set<std::string> k = {
      "alignas",     "alignof",      "auto",         "bool",
      "break",       "case",         "catch",        "char",
      "class",       "co_await",     "co_return",    "co_yield",
      "const",       "const_cast",   "consteval",    "constexpr",
      "constinit",   "continue",     "decltype",     "default",
      "delete",      "do",           "double",       "dynamic_cast",
      "else",        "enum",         "explicit",     "extern",
      "false",       "float",        "for",          "friend",
      "goto",        "if",           "inline",       "int",
      "long",        "mutable",      "namespace",    "new",
      "noexcept",    "nullptr",      "operator",     "private",
      "protected",   "public",       "reinterpret_cast",
      "return",      "short",        "signed",       "sizeof",
      "static",      "static_assert","static_cast",  "struct",
      "switch",      "template",     "this",         "thread_local",
      "throw",       "true",         "try",          "typedef",
      "typeid",      "typename",     "union",        "unsigned",
      "using",       "virtual",      "void",         "volatile",
      "while"};
  return k.count(s) != 0;
}

bool is_primitive_type(const std::string& s) {
  static const std::set<std::string> k = {"auto",  "bool",   "char", "int",
                                          "long",  "short",  "float",
                                          "double", "unsigned", "signed",
                                          "void"};
  return k.count(s) != 0;
}

/// Calls that cannot throw: the exceptional-gap scan (A2) skips these.
bool is_nonthrowing_call(const std::string& name) {
  static const std::set<std::string> k = {
      "move",      "forward",  "swap",     "size",    "empty",   "clear",
      "valid",     "load",     "store",    "fetch_add", "fetch_sub",
      "exchange",  "data",     "begin",    "end",     "c_str",   "min",
      "max",       "front",    "back",     "count",   "get_future",
      "reset",     "release",  "get",      "notify_all", "notify_one"};
  return k.count(name) != 0 || is_keyword(name);
}

/// True when the identifier at `i` (followed by '(') is a blocking wait that
/// drains deferred work: pool helpers, futures, thread joins.
bool is_wait_call(const std::vector<Token>& t, std::size_t i) {
  static const std::set<std::string> waits = {
      "help_get", "drain", "wait", "wait_for", "wait_until", "join",
      "run_one"};
  const std::string& n = t[i].text;
  if (waits.count(n) != 0) return true;
  if (n == "get" && i >= 2 &&
      (t[i - 1].text == "." || t[i - 1].text == "->") && is_ident(t, i - 2)) {
    std::string recv = t[i - 2].text;
    std::transform(recv.begin(), recv.end(), recv.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return recv.find("fut") != std::string::npos;
  }
  return false;
}

/// Types whose appearance in an initializer means the data was copied out of
/// the arena into owning storage (not a view).
bool mentions_owning_container(const std::vector<Token>& t, std::size_t b,
                               std::size_t e) {
  static const std::set<std::string> k = {
      "vector", "string", "set",   "map",   "unordered_map",
      "unordered_set", "deque", "array", "basic_string"};
  for (std::size_t i = b; i < e && i < t.size(); ++i)
    if (t[i].kind == TokKind::kIdent && k.count(t[i].text) != 0) return true;
  return false;
}

bool path_matches(const std::string& path,
                  const std::vector<std::string>& subs) {
  for (const auto& s : subs)
    if (path.find(s) != std::string::npos) return true;
  return false;
}

std::string loc_of(const Token& t) {
  std::ostringstream os;
  os << t.line << ":" << t.col;
  return os.str();
}

// ---------------------------------------------------------------------------
// Lambda discovery.
// ---------------------------------------------------------------------------

void parse_captures(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    std::vector<Capture>* out) {
  std::size_t i = b;
  while (i < e) {
    // One capture entry, up to a top-level ','.
    std::size_t j = i;
    int depth = 0;
    while (j < e) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "{" || s == "[") ++depth;
      if (s == ")" || s == "}" || s == "]") --depth;
      if (s == "," && depth == 0) break;
      ++j;
    }
    if (j > i) {
      Capture c;
      c.tok = i;
      if (is(t, i, "&") && j == i + 1) {
        c.by_ref = c.is_default = true;
        out->push_back(c);
      } else if (is(t, i, "=") && j == i + 1) {
        c.is_default = true;
        out->push_back(c);
      } else if (is(t, i, "this")) {
        c.is_this = true;
        out->push_back(c);
      } else if (is(t, i, "*") && is(t, i + 1, "this")) {
        c.is_this = true;
        out->push_back(c);
      } else if (is(t, i, "&") && is_ident(t, i + 1)) {
        c.by_ref = true;
        c.name = t[i + 1].text;
        c.tok = i + 1;
        out->push_back(c);
      } else if (is_ident(t, i) && !is_keyword(t[i].text)) {
        c.name = t[i].text;  // plain or init-capture, by value either way
        out->push_back(c);
      }
    }
    i = j + 1;
  }
}

std::vector<LambdaInfo> find_lambdas(const std::vector<Token>& t) {
  std::vector<LambdaInfo> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is(t, i, "[")) continue;
    if (is(t, i + 1, "[")) {  // [[attribute]]
      std::size_t past = match(t, i, "[", "]");
      if (past > i) i = past - 1;
      continue;
    }
    if (i > 0) {
      const Token& p = t[i - 1];
      if (p.kind == TokKind::kIdent && !is_keyword(p.text)) continue;
      if (p.text == ")" || p.text == "]") continue;  // subscript
    }
    std::size_t close = match(t, i, "[", "]");
    if (close >= t.size()) continue;
    std::size_t j = close;
    if (is(t, j, "(")) j = match(t, j, "(", ")");
    bool gave_up = false;
    while (j < t.size() && !is(t, j, "{") && !gave_up) {
      if (is(t, j, "mutable") || is(t, j, "constexpr") ||
          is(t, j, "noexcept")) {
        ++j;
        if (is(t, j, "(")) j = match(t, j, "(", ")");
      } else if (is(t, j, "->")) {
        ++j;
        while (j < t.size() && !is(t, j, "{")) {
          if (is(t, j, "<")) {
            j = skip_angles(t, j);
          } else if (is_ident(t, j) || is(t, j, "::") || is(t, j, "&") ||
                     is(t, j, "*")) {
            ++j;
          } else {
            gave_up = true;
            break;
          }
        }
      } else {
        gave_up = true;
      }
    }
    if (gave_up || !is(t, j, "{")) continue;
    LambdaInfo lam;
    lam.intro = i;
    lam.intro_close = close;
    lam.body_open = j;
    lam.body_close = match(t, j, "{", "}");
    parse_captures(t, i + 1, close - 1, &lam.captures);
    out.push_back(std::move(lam));
  }
  return out;
}

/// Innermost lambda whose intro lies inside [b, e), or -1.
int lambda_in_range(const std::vector<LambdaInfo>& lambdas, std::size_t b,
                    std::size_t e) {
  for (std::size_t k = 0; k < lambdas.size(); ++k)
    if (lambdas[k].intro >= b && lambdas[k].intro < e)
      return static_cast<int>(k);
  return -1;
}

/// True when token index i sits inside any lambda body from `lambdas`.
bool inside_lambda_body(const std::vector<LambdaInfo>& lambdas,
                        std::size_t i) {
  for (const auto& lam : lambdas)
    if (i > lam.body_open && i + 1 < lam.body_close) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Class discovery: name, body range, fields at body depth 1.
// ---------------------------------------------------------------------------

std::vector<ClassRange> find_classes(const std::vector<Token>& t) {
  std::vector<ClassRange> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is(t, i, "class") && !is(t, i, "struct")) continue;
    if (!is_ident(t, i + 1) || is_keyword(t[i + 1].text)) continue;
    std::size_t j = i + 2;
    while (j < t.size() && !is(t, j, "{") && !is(t, j, ";") &&
           !is(t, j, ")") && !is(t, j, ",") && !is(t, j, "=") &&
           !is(t, j, ">"))
      ++j;
    if (j >= t.size() || !is(t, j, "{")) continue;
    ClassRange c;
    c.name = t[i + 1].text;
    c.open = j;
    c.close = match(t, j, "{", "}");
    out.push_back(std::move(c));
  }
  return out;
}

void collect_fields(const std::vector<Token>& t, const ClassRange& c,
                    std::vector<std::string>* fields) {
  int depth = 0;
  for (std::size_t i = c.open; i < c.close && i < t.size(); ++i) {
    if (is(t, i, "{")) {
      ++depth;
      continue;
    }
    if (is(t, i, "}")) {
      --depth;
      continue;
    }
    if (depth != 1) continue;
    if (!is_ident(t, i) || t[i].text.size() < 2) continue;
    if (t[i].text.back() != '_') continue;
    if (is(t, i + 1, ";") || is(t, i + 1, "=") || is(t, i + 1, "{"))
      fields->push_back(t[i].text);
  }
}

// ---------------------------------------------------------------------------
// Declaration parsing.
// ---------------------------------------------------------------------------

/// Parses `cv type-chain ref/ptr name` starting at `i`. On success fills the
/// type/name fields of `d` and sets `*after_name` to the token just past the
/// name. The caller decides what the terminator means (initializer, range-for
/// colon, parameter comma, ...).
bool parse_type_and_name(const std::vector<Token>& t, std::size_t i,
                         std::size_t end, Decl* d, std::size_t* after_name) {
  std::size_t j = i;
  while (j < end &&
         (is(t, j, "const") || is(t, j, "static") || is(t, j, "constexpr") ||
          is(t, j, "thread_local") || is(t, j, "inline") ||
          is(t, j, "mutable") || is(t, j, "typename") || is(t, j, "struct")))
    ++j;
  if (j >= end || !is_ident(t, j)) return false;
  if (is_keyword(t[j].text) && !is_primitive_type(t[j].text)) return false;
  // Qualified-id type chain with one template argument list per component.
  while (j < end && is_ident(t, j)) {
    if (is_keyword(t[j].text) && !is_primitive_type(t[j].text)) return false;
    if (t[j].text == "auto") d->is_auto = true;
    d->type.push_back(t[j].text);
    ++j;
    if (is(t, j, "<")) {
      std::size_t k = skip_angles(t, j);
      if (k >= end + 2 && k > t.size()) return false;
      for (std::size_t a = j + 1; a + 1 < k; ++a)
        if (is_ident(t, a)) d->template_args.push_back(t[a].text);
      j = k;
    }
    if (is(t, j, "::")) {
      ++j;
      continue;
    }
    break;
  }
  while (j < end && is(t, j, "const")) ++j;
  while (j < end &&
         (is(t, j, "&") || is(t, j, "&&") || is(t, j, "*"))) {
    if (t[j].text == "*")
      d->is_ptr = true;
    else
      d->is_ref = true;
    ++j;
  }
  while (j < end && is(t, j, "const")) ++j;
  if (j >= end || !is_ident(t, j) || is_keyword(t[j].text)) return false;
  d->name = t[j].text;
  d->name_tok = j;
  *after_name = j + 1;
  return true;
}

/// Scans past a balanced initializer to the top-level `;` (or the enclosing
/// `)` for range-for inits). Returns the index of the terminator.
std::size_t scan_to_statement_end(const std::vector<Token>& t, std::size_t i,
                                  std::size_t end) {
  int depth = 0;
  for (std::size_t j = i; j < end && j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "(" || s == "{" || s == "[") ++depth;
    if (s == ")" || s == "}" || s == "]") {
      if (depth == 0) return j;
      --depth;
    }
    if (s == ";" && depth == 0) return j;
  }
  return end;
}

void collect_params(const std::vector<Token>& t, FunctionInfo* fn) {
  static const std::set<std::string> callable_markers = {
      "function", "Function", "Fn", "F", "Func", "Callable", "Task",
      "Job", "Handler", "Sink", "Invocable"};
  std::size_t i = fn->params_open + 1;
  std::size_t end = fn->params_close > 0 ? fn->params_close - 1 : i;
  while (i < end) {
    std::size_t stop = i;
    int depth = 0;
    while (stop < end) {
      const std::string& s = t[stop].text;
      if (s == "(" || s == "{" || s == "[") ++depth;
      if (s == ")" || s == "}" || s == "]") --depth;
      if (s == "<") stop = skip_angles(t, stop) - 1;
      if (s == "," && depth == 0) break;
      ++stop;
    }
    Decl d;
    std::size_t after = 0;
    if (parse_type_and_name(t, i, stop, &d, &after)) {
      bool callable = false;
      for (const auto& s : d.type)
        if (callable_markers.count(s) != 0) callable = true;
      for (const auto& s : d.template_args)
        if (callable_markers.count(s) != 0) callable = true;
      if (callable) fn->callable_params.push_back(d.name);
      fn->params.push_back(std::move(d));
    }
    i = stop + 1;
  }
}

void collect_locals(const std::vector<Token>& t, FunctionInfo* fn,
                    const std::vector<LambdaInfo>& lambdas) {
  if (fn->body_close <= fn->body_open + 1) return;
  std::size_t b = fn->body_open + 1, e = fn->body_close - 1;
  for (std::size_t i = b; i < e; ++i) {
    bool stmt_start = (i == b);
    bool in_for_head = false;
    if (!stmt_start) {
      const std::string& prev = t[i - 1].text;
      if (prev == ";" || prev == "{" || prev == "}") stmt_start = true;
      if (prev == "(" && i >= 2 && is(t, i - 2, "for")) {
        stmt_start = true;
        in_for_head = true;
      }
    }
    if (!stmt_start) continue;
    Decl d;
    std::size_t after = 0;
    if (!parse_type_and_name(t, i, e, &d, &after)) continue;
    const std::string& term = t[after].text;
    if (term == "=" || term == "{" || term == "(") {
      d.init_begin = after + 1;
      d.init_end = scan_to_statement_end(t, after + 1, e);
    } else if (term == ":" && in_for_head) {
      d.init_begin = after + 1;
      d.init_end = scan_to_statement_end(t, after + 1, e);
    } else if (term != ";" && term != ",") {
      continue;
    }
    if (d.init_begin < d.init_end)
      d.lambda_index = lambda_in_range(lambdas, d.init_begin, d.init_end);
    fn->locals.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// Function discovery.
// ---------------------------------------------------------------------------

void build_scopes(const std::vector<Token>& t, FunctionInfo* fn) {
  ScopeNode root;
  root.open = fn->body_open;
  root.close = fn->body_close;
  root.head = fn->body_open;
  fn->scopes.push_back(root);
  std::vector<int> stack = {0};
  for (std::size_t i = fn->body_open + 1; i + 1 < fn->body_close; ++i) {
    if (is(t, i, "{")) {
      ScopeNode node;
      node.open = i;
      node.close = match(t, i, "{", "}");
      node.head = i;
      node.parent = stack.back();
      if (i > 0 && is(t, i - 1, "do")) node.is_loop = true;
      if (i > 0 && is(t, i - 1, ")")) {
        // Backward-match the paren to see if a loop keyword introduces it.
        int depth = 1;
        std::size_t j = i - 1;
        while (j > fn->body_open && depth > 0) {
          --j;
          if (is(t, j, ")")) ++depth;
          if (is(t, j, "(")) --depth;
        }
        if (depth == 0 && j > 0 &&
            (is(t, j - 1, "for") || is(t, j - 1, "while"))) {
          node.is_loop = true;
          node.head = j;
        }
      }
      fn->scopes.push_back(node);
      stack.push_back(static_cast<int>(fn->scopes.size()) - 1);
    } else if (is(t, i, "}")) {
      if (stack.size() > 1) stack.pop_back();
    }
  }
}

/// Innermost loop scope containing token index i, or -1.
int enclosing_loop(const FunctionInfo& fn, std::size_t i) {
  int best = -1;
  std::size_t best_open = 0;
  for (std::size_t s = 0; s < fn.scopes.size(); ++s) {
    const ScopeNode& n = fn.scopes[s];
    if (n.is_loop && n.open < i && i < n.close && n.open >= best_open) {
      best = static_cast<int>(s);
      best_open = n.open;
    }
  }
  return best;
}

std::vector<FunctionInfo> find_functions(const std::vector<Token>& t,
                                         const std::vector<LambdaInfo>& lams,
                                         const std::vector<ClassRange>& cls) {
  std::vector<FunctionInfo> out;
  for (std::size_t p = 1; p < t.size(); ++p) {
    if (!is(t, p, "(")) continue;
    if (!is_ident(t, p - 1) || is_keyword(t[p - 1].text)) continue;
    if (p >= 2) {
      const std::string& before = t[p - 2].text;
      if (before == "," || before == ":" || before == "." ||
          before == "->" || before == "~")
        continue;
    }
    std::size_t close = match(t, p, "(", ")");
    if (close >= t.size()) continue;
    // Forward scan over qualifiers / trailing return / ctor-init list. A
    // terminator other than '{' means this paren was a call or declaration.
    std::size_t j = close;
    bool ok = true, found_body = false;
    while (j < t.size()) {
      const std::string& s = t[j].text;
      if (s == "{") {
        found_body = true;
        break;
      }
      if (s == "const" || s == "noexcept" || s == "override" ||
          s == "final" || s == "mutable" || s == "try" || s == "&" ||
          s == "&&") {
        ++j;
        if (is(t, j, "(")) j = match(t, j, "(", ")");
        continue;
      }
      if (s == "->") {
        ++j;
        while (j < t.size() && !is(t, j, "{") && !is(t, j, ";")) {
          if (is(t, j, "<")) {
            j = skip_angles(t, j);
          } else if (is_ident(t, j) || is(t, j, "::") || is(t, j, "&") ||
                     is(t, j, "*")) {
            ++j;
          } else {
            break;
          }
        }
        continue;
      }
      if (s == ":") {  // constructor member-initializer list
        ++j;
        bool init_ok = true;
        while (j < t.size() && init_ok) {
          if (!is_ident(t, j)) {
            init_ok = false;
            break;
          }
          ++j;
          if (is(t, j, "<")) j = skip_angles(t, j);
          if (is(t, j, "("))
            j = match(t, j, "(", ")");
          else if (is(t, j, "{"))
            j = match(t, j, "{", "}");
          else {
            init_ok = false;
            break;
          }
          if (is(t, j, ",")) {
            ++j;
            continue;
          }
          break;
        }
        if (!init_ok) ok = false;
        if (!ok) break;
        continue;
      }
      ok = false;
      break;
    }
    if (!ok || !found_body) continue;
    FunctionInfo fn;
    fn.name = t[p - 1].text;
    fn.name_tok = p - 1;
    fn.params_open = p;
    fn.params_close = close;
    fn.body_open = j;
    fn.body_close = match(t, j, "{", "}");
    if (p >= 3 && is(t, p - 2, "::") && is_ident(t, p - 3))
      fn.qualifier = t[p - 3].text;
    if (fn.qualifier.empty()) {
      for (const auto& c : cls)
        if (fn.name_tok > c.open && fn.name_tok < c.close)
          fn.qualifier = c.name;
    }
    collect_params(t, &fn);
    collect_locals(t, &fn, lams);
    build_scopes(t, &fn);
    out.push_back(std::move(fn));
  }
  return out;
}

// ---------------------------------------------------------------------------
// File model + cross-file spawn summary.
// ---------------------------------------------------------------------------

FileModel build_model(const analysis::SourceFile& file) {
  FileModel fm;
  fm.scan = analysis::tokenize(file);
  fm.lambdas = find_lambdas(fm.scan.tokens);
  fm.classes = find_classes(fm.scan.tokens);
  for (const auto& c : fm.classes)
    collect_fields(fm.scan.tokens, c, &fm.class_fields[c.name]);
  fm.functions = find_functions(fm.scan.tokens, fm.lambdas, fm.classes);
  return fm;
}

bool is_container_push(const std::vector<Token>& t, std::size_t i) {
  static const std::set<std::string> pushes = {"push_back", "emplace_back",
                                               "push", "emplace", "insert"};
  return pushes.count(t[i].text) != 0 && i > 0 &&
         (t[i - 1].text == "." || t[i - 1].text == "->");
}

/// A function joins the spawning set when it forwards one of its callable
/// parameters into a spawning call (or queues it in a container) and no
/// blocking wait follows the forwarding site -- so ThreadPool::parallel_for,
/// which drains its chunks before returning, stays out, while Daemon::post
/// and Daemon::handle join.
void compute_spawning(Project* proj) {
  proj->spawning = {"submit", "async"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& fm : proj->files) {
      const auto& t = fm.scan.tokens;
      for (auto& fn : fm.functions) {
        if (fn.callable_params.empty()) continue;
        if (proj->spawning.count(fn.name) != 0) continue;
        for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i) {
          if (!is_ident(t, i) || !is(t, i + 1, "(")) continue;
          if (i == fn.name_tok) continue;
          bool spawner = proj->spawning.count(t[i].text) != 0;
          if (!spawner && !is_container_push(t, i)) continue;
          std::size_t close = match(t, i + 1, "(", ")");
          bool forwards = false;
          for (std::size_t a = i + 2; a + 1 < close; ++a) {
            if (!is_ident(t, a)) continue;
            for (const auto& cp : fn.callable_params)
              if (t[a].text == cp) forwards = true;
          }
          if (!forwards) continue;
          bool waits = false;
          for (std::size_t w = close; w + 1 < fn.body_close; ++w)
            if (is_ident(t, w) && is(t, w + 1, "(") && is_wait_call(t, w))
              waits = true;
          if (!waits) {
            proj->spawning.insert(fn.name);
            changed = true;
          }
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule engine.
// ---------------------------------------------------------------------------

struct SpawnSite {
  std::size_t callee = 0;         // identifier token of the spawning call
  std::size_t open = 0, close = 0;  // argument parens
  std::vector<int> task_lambdas;  // indices into FileModel::lambdas
};

struct Engine {
  const AnalyzeOptions& options;
  const Project& proj;
  const FileModel& fm;
  AnalyzeResult& result;

  bool rule_enabled(const char* rule) const {
    if (options.rules.empty()) return true;
    for (const auto& r : options.rules)
      if (r == rule) return true;
    return false;
  }

  void emit(const char* rule, const Token& at, std::string message,
            std::vector<std::string> chain = {}) {
    analysis::Finding f;
    f.rule = rule;
    f.path = fm.scan.file->path;
    f.line = at.line;
    f.col = at.col;
    f.message = std::move(message);
    f.chain = std::move(chain);
    analysis::finish_finding(f, fm.scan, "mbrc-analyze",
                             result.bad_suppressions);
    result.findings.push_back(std::move(f));
  }

  /// Innermost declaration of `name` visible before token index `before`.
  const Decl* resolve(const FunctionInfo& fn, const std::string& name,
                      std::size_t before) const {
    const Decl* best = nullptr;
    for (const auto& d : fn.locals)
      if (d.name == name && d.name_tok < before) best = &d;
    if (best) return best;
    for (const auto& d : fn.params)
      if (d.name == name) return &d;
    return nullptr;
  }

  /// Deferred-execution call sites in `fn` and the task lambdas they carry
  /// (literal lambda arguments plus identifiers resolving to
  /// lambda-initialized locals).
  std::vector<SpawnSite> spawn_sites(const FunctionInfo& fn) const {
    std::vector<SpawnSite> out;
    const auto& t = fm.scan.tokens;
    std::set<std::size_t> def_names;
    for (const auto& f : fm.functions) def_names.insert(f.name_tok);
    for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i) {
      if (!is_ident(t, i) || !is(t, i + 1, "(")) continue;
      if (proj.spawning.count(t[i].text) == 0) continue;
      if (def_names.count(i) != 0) continue;
      SpawnSite site;
      site.callee = i;
      site.open = i + 1;
      site.close = match(t, i + 1, "(", ")");
      for (std::size_t k = 0; k < fm.lambdas.size(); ++k)
        if (fm.lambdas[k].intro > site.open &&
            fm.lambdas[k].intro < site.close)
          site.task_lambdas.push_back(static_cast<int>(k));
      for (std::size_t a = site.open + 1; a + 1 < site.close; ++a) {
        if (!is_ident(t, a)) continue;
        bool in_lam = false;
        for (int k : site.task_lambdas) {
          const auto& lam = fm.lambdas[static_cast<std::size_t>(k)];
          if (a >= lam.intro && a < lam.body_close) in_lam = true;
        }
        if (in_lam) continue;
        const Decl* d = resolve(fn, t[a].text, a);
        if (d && d->lambda_index >= 0)
          site.task_lambdas.push_back(d->lambda_index);
      }
      out.push_back(std::move(site));
    }
    return out;
  }

  /// Throwing-capable calls in the token range [b, e), skipping nested
  /// lambda bodies (they run later, not on this path).
  void collect_throwing(std::size_t b, std::size_t e,
                        std::vector<std::string>* out) const {
    const auto& t = fm.scan.tokens;
    for (std::size_t i = b; i < e && i + 1 < t.size(); ++i) {
      if (inside_lambda_body(fm.lambdas, i)) continue;
      if (!is_ident(t, i) || !is(t, i + 1, "(")) continue;
      if (is_nonthrowing_call(t[i].text) || is_wait_call(t, i)) continue;
      out->push_back("'" + t[i].text + "(...)' at " + loc_of(t[i]) +
                     " can throw before the wait runs");
    }
  }

  // ---- A2: task-capture lifetime ----------------------------------------

  void check_task_captures(const FunctionInfo& fn) {
    if (!rule_enabled("A2")) return;
    const auto& t = fm.scan.tokens;
    for (const SpawnSite& site : spawn_sites(fn)) {
      for (int li : site.task_lambdas) {
        const LambdaInfo& lam = fm.lambdas[static_cast<std::size_t>(li)];
        std::vector<std::string> hazards;
        for (const Capture& c : lam.captures) {
          if (c.is_this) continue;
          if (c.is_default && c.by_ref) {
            hazards.push_back("captures the frame by reference ([&]) at " +
                              loc_of(t[c.tok]));
          } else if (c.by_ref && !c.name.empty()) {
            if (resolve(fn, c.name, lam.intro) != nullptr)
              hazards.push_back("captures local '" + c.name +
                                "' by reference at " + loc_of(t[c.tok]));
          } else if (!c.name.empty()) {
            const Decl* d = resolve(fn, c.name, lam.intro);
            if (d && d->lambda_index >= 0 &&
                fm.lambdas[static_cast<std::size_t>(d->lambda_index)]
                    .has_ref_capture())
              hazards.push_back(
                  "captures lambda '" + c.name +
                  "' by value, which itself captures the frame by "
                  "reference (declared at " +
                  loc_of(t[d->name_tok]) + ")");
          }
        }
        if (hazards.empty()) continue;
        // A recognized RAII wait guard declared before the submission
        // drains on every exit path, exceptional ones included.
        bool guarded = false;
        for (const auto& d : fn.locals) {
          if (d.name_tok >= site.callee) continue;
          for (const auto& g : options.wait_guard_types)
            if (std::find(d.type.begin(), d.type.end(), g) != d.type.end())
              guarded = true;
        }
        if (guarded) continue;
        std::size_t wait_at = 0;
        for (std::size_t w = site.close; w + 1 < fn.body_close; ++w) {
          if (inside_lambda_body(fm.lambdas, w)) continue;
          if (is_ident(t, w) && is(t, w + 1, "(") && is_wait_call(t, w)) {
            wait_at = w;
            break;
          }
        }
        if (wait_at == 0) {
          emit("A2", t[site.callee],
               "deferred task submitted via '" + t[site.callee].text +
                   "' captures the enclosing frame but no join/wait "
                   "dominates scope exit",
               hazards);
          continue;
        }
        std::vector<std::string> throwing;
        collect_throwing(site.close, wait_at, &throwing);
        int loop = enclosing_loop(fn, site.callee);
        if (loop >= 0 &&
            wait_at >= fn.scopes[static_cast<std::size_t>(loop)].close)
          collect_throwing(fn.scopes[static_cast<std::size_t>(loop)].head,
                           site.callee, &throwing);
        if (throwing.empty()) continue;
        std::vector<std::string> chain = hazards;
        chain.push_back("the wait at " + loc_of(t[wait_at]) +
                        " does not dominate scope exit:");
        for (std::size_t k = 0; k < throwing.size() && k < 3; ++k)
          chain.push_back(throwing[k]);
        emit("A2", t[site.callee],
             "deferred task captures the enclosing frame and the wait at " +
                 loc_of(t[wait_at]) +
                 " can be skipped by exceptional unwind (declare a " 
                 "FutureDrain/DrainGuard before the submission)",
             chain);
      }
    }
  }

  // ---- A1: arena escape --------------------------------------------------

  struct View {
    const Decl* d = nullptr;
    std::string base;
  };

  void check_arena_escape(const FunctionInfo& fn) {
    if (!rule_enabled("A1")) return;
    if (path_matches(fm.scan.file->path, options.arena_exempt_paths)) return;
    const auto& t = fm.scan.tokens;
    std::map<std::string, std::size_t> bases;
    for (const auto& d : fn.params)
      if (d.type_contains("Arena")) bases[d.name] = d.name_tok;
    for (const auto& d : fn.locals)
      if (d.type_contains("Arena")) bases[d.name] = d.name_tok;
    if (bases.empty()) return;
    auto init_mentions = [&](const Decl& d, const std::string& name) {
      for (std::size_t i = d.init_begin; i < d.init_end; ++i)
        if (is_ident(t, i) && t[i].text == name) return true;
      return false;
    };
    std::vector<View> views;
    for (const auto& d : fn.locals) {
      if (d.init_begin >= d.init_end) continue;
      if (d.type_contains("Arena")) continue;
      std::string base;
      for (const auto& kv : bases)
        if (init_mentions(d, kv.first)) base = kv.first;
      if (base.empty()) {
        for (const auto& v : views)
          if (init_mentions(d, v.d->name)) base = v.base;
      }
      if (base.empty()) continue;
      if (d.is_ref || d.is_ptr) {
        views.push_back({&d, base});
      } else if (d.is_auto || d.type_contains("iterator")) {
        bool iterish = false;
        for (std::size_t i = d.init_begin; i + 2 < d.init_end; ++i)
          if ((is(t, i, ".") || is(t, i, "->")) && is_ident(t, i + 1) &&
              (t[i + 1].text == "begin" || t[i + 1].text == "end" ||
               t[i + 1].text == "data" || t[i + 1].text == "find") &&
              is(t, i + 2, "("))
            iterish = true;
        if (iterish &&
            !mentions_owning_container(t, d.init_begin, d.init_end))
          views.push_back({&d, base});
      }
    }
    auto view_named = [&](const std::string& n) -> const View* {
      for (const auto& v : views)
        if (v.d->name == n) return &v;
      return nullptr;
    };
    auto derivation = [&](const View& v) {
      return "view '" + v.d->name + "' derived from arena '" + v.base +
             "' at " + loc_of(t[v.d->name_tok]);
    };
    auto escaping_target = [&](const std::string& name) {
      if (name.size() > 1 && name.back() == '_') return true;  // member
      for (const auto& p : fn.params)
        if (p.name == name && (p.is_ref || p.is_ptr)) return true;
      return false;
    };
    for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i) {
      if (is(t, i, "return")) {
        std::size_t end = scan_to_statement_end(t, i + 1, fn.body_close);
        if (mentions_owning_container(t, i + 1, end)) {
          i = end;
          continue;
        }
        const View* hit = nullptr;
        std::string direct;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (!is_ident(t, j)) continue;
          if (const View* v = view_named(t[j].text)) {
            hit = v;
            break;
          }
          if (bases.count(t[j].text) != 0 &&
              (is(t, j + 1, ".") || is(t, j + 1, "->")) &&
              is_ident(t, j + 2) &&
              (t[j + 2].text == "data" || t[j + 2].text == "begin" ||
               t[j + 2].text == "end")) {
            direct = t[j].text;
            break;
          }
        }
        if (hit != nullptr)
          emit("A1", t[i],
               "returns view '" + hit->d->name +
                   "' into arena storage; the per-worker arena is reset "
                   "before the caller is done with it",
               {derivation(*hit)});
        else if (!direct.empty())
          emit("A1", t[i],
               "returns a raw view into arena '" + direct + "' storage");
        i = end;
        continue;
      }
      if (is_ident(t, i) && is(t, i + 1, "=")) {
        std::size_t end = scan_to_statement_end(t, i + 2, fn.body_close);
        const View* rhs = nullptr;
        for (std::size_t j = i + 2; j < end; ++j)
          if (is_ident(t, j))
            if (const View* v = view_named(t[j].text)) {
              rhs = v;
              break;
            }
        if (rhs != nullptr && escaping_target(t[i].text))
          emit("A1", t[i],
               "stores view '" + rhs->d->name + "' into '" + t[i].text +
                   "', which outlives the arena reset scope",
               {derivation(*rhs)});
        continue;
      }
      if (is_ident(t, i) && is_container_push(t, i) && is(t, i + 1, "(")) {
        std::size_t close = match(t, i + 1, "(", ")");
        const View* arg = nullptr;
        for (std::size_t j = i + 2; j + 1 < close; ++j)
          if (is_ident(t, j))
            if (const View* v = view_named(t[j].text)) {
              arg = v;
              break;
            }
        if (arg != nullptr && i >= 2 && is_ident(t, i - 2) &&
            escaping_target(t[i - 2].text))
          emit("A1", t[i],
               "inserts view '" + arg->d->name +
                   "' into escaping container '" + t[i - 2].text + "'",
               {derivation(*arg)});
        continue;
      }
    }
    for (const SpawnSite& site : spawn_sites(fn))
      for (int li : site.task_lambdas)
        for (const Capture& c :
             fm.lambdas[static_cast<std::size_t>(li)].captures) {
          if (c.name.empty()) continue;
          if (const View* v = view_named(c.name))
            emit("A1", t[c.tok],
                 "deferred task captures view '" + c.name +
                     "' into arena storage",
                 {derivation(*v)});
        }
  }

  // ---- A3: strand discipline ---------------------------------------------

  void check_strand_discipline(const FunctionInfo& fn) {
    if (!rule_enabled("A3")) return;
    if (!path_matches(fm.scan.file->path, options.strand_paths)) return;
    for (const auto& cls : options.strand_classes)
      if (fn.qualifier == cls) return;
    for (const auto& ep : options.strand_entry_points)
      if (fn.name == ep) return;
    const auto& t = fm.scan.tokens;
    std::vector<std::pair<std::size_t, std::size_t>> posted;
    for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i) {
      if (is_ident(t, i) && t[i].text == "post" && is(t, i + 1, "(")) {
        std::size_t close = match(t, i + 1, "(", ")");
        for (const auto& lam : fm.lambdas)
          if (lam.intro > i && lam.intro < close)
            posted.push_back({lam.intro, lam.body_close});
      }
    }
    for (std::size_t i = fn.body_open + 1; i + 2 < fn.body_close; ++i) {
      if (!is_ident(t, i)) continue;
      if (!is(t, i + 1, ".") && !is(t, i + 1, "->")) continue;
      if (!is_ident(t, i + 2)) continue;
      const std::string& field = t[i + 2].text;
      bool in_posted = false;
      for (const auto& range : posted)
        if (i > range.first && i < range.second) in_posted = true;
      if (in_posted) continue;
      const Decl* d = resolve(fn, t[i].text, i);
      if (d == nullptr) continue;
      for (const auto& cls : options.strand_classes) {
        auto it = proj.class_fields.find(cls);
        if (it == proj.class_fields.end()) continue;
        if (std::find(it->second.begin(), it->second.end(), field) ==
            it->second.end())
          continue;
        if (d->type_contains(cls))
          emit("A3", t[i + 2],
               "field '" + field + "' of strand-confined " + cls +
                   " touched outside its strand; only " + cls +
                   ":: members, strand entry points and lambdas posted to "
                   "the strand may touch it");
      }
    }
  }

  // ---- A4: journal bypass ------------------------------------------------

  void check_journal_bypass(const FunctionInfo& fn) {
    if (!rule_enabled("A4")) return;
    if (path_matches(fm.scan.file->path, options.journal_exempt_paths))
      return;
    const auto& t = fm.scan.tokens;
    bool has_notify = false;
    for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i)
      if (is_ident(t, i) && t[i].text == "notify_moved" && is(t, i + 1, "("))
        has_notify = true;
    auto ref_via = [&](const Decl& d, const char* tyname,
                      const char* accessor) {
      if (!d.is_ref && !d.is_ptr) return false;
      if (d.type_contains(tyname)) return true;
      if (d.is_auto && d.init_begin < d.init_end) {
        for (std::size_t i = d.init_begin; i + 2 < d.init_end; ++i)
          if ((is(t, i, ".") || is(t, i, "->")) && is_ident(t, i + 1) &&
              t[i + 1].text.rfind(accessor, 0) == 0 && is(t, i + 2, "("))
            return true;
      }
      return false;
    };
    std::set<std::string> cell_refs, pin_refs;
    for (const auto& d : fn.locals) {
      if (ref_via(d, "Cell", "cell")) cell_refs.insert(d.name);
      if (ref_via(d, "Pin", "pin")) pin_refs.insert(d.name);
    }
    for (const auto& d : fn.params) {
      if ((d.is_ref || d.is_ptr) && d.type_contains("Cell"))
        cell_refs.insert(d.name);
      if ((d.is_ref || d.is_ptr) && d.type_contains("Pin"))
        pin_refs.insert(d.name);
    }
    for (std::size_t i = fn.body_open + 1; i + 2 < fn.body_close; ++i) {
      if (!is_ident(t, i)) continue;
      if (!is(t, i + 1, ".") && !is(t, i + 1, "->")) continue;
      if (!is_ident(t, i + 2)) continue;
      const std::string& m = t[i + 2].text;
      if (m == "cell" && is(t, i + 3, "(")) {
        const Decl* d = resolve(fn, t[i].text, i);
        bool is_design = (d != nullptr && d->type_contains("Design")) ||
                         t[i].text.find("design") != std::string::npos;
        if (!is_design) continue;
        std::size_t close = match(t, i + 3, "(", ")");
        if (is(t, close, ".") && is(t, close + 1, "position")) {
          std::size_t a = close + 2;
          if (is(t, a, ".") && is_ident(t, a + 1)) a += 2;
          if (is(t, a, "=") && !has_notify)
            emit("A4", t[i],
                 "writes cell position through '" + t[i].text +
                     ".cell(...)' but '" + fn.name +
                     "' never calls notify_moved; the incremental timing "
                     "engine goes stale against the run_sta oracle");
        }
        continue;
      }
      if (m == "position" && cell_refs.count(t[i].text) != 0) {
        std::size_t a = i + 3;
        if (is(t, a, ".") && is_ident(t, a + 1)) a += 2;
        if (is(t, a, "=") && !has_notify)
          emit("A4", t[i],
               "writes '" + t[i].text + ".position' but '" + fn.name +
                   "' never calls notify_moved; the incremental timing "
                   "engine goes stale against the run_sta oracle");
        continue;
      }
      if (m == "net" && pin_refs.count(t[i].text) != 0 &&
          is(t, i + 3, "=")) {
        emit("A4", t[i],
             "rewires pin '" + t[i].text +
                 ".net' directly; route the rewire through the journaled "
                 "Design API");
        continue;
      }
      if ((m == "reg" || m == "variant") && cell_refs.count(t[i].text) != 0 &&
          is(t, i + 3, "="))
        emit("A4", t[i],
             "swaps register variant via '" + t[i].text + "." + m +
                 "' without a journal append");
    }
  }
};

}  // namespace

AnalyzeResult run_analyze(const std::vector<SourceFile>& files,
                          const AnalyzeOptions& options,
                          const std::vector<BaselineEntry>& baseline) {
  AnalyzeResult result;
  Project proj;
  proj.files.reserve(files.size());
  for (const auto& f : files) proj.files.push_back(build_model(f));
  for (const auto& fm : proj.files)
    for (const auto& kv : fm.class_fields) {
      auto& dst = proj.class_fields[kv.first];
      dst.insert(dst.end(), kv.second.begin(), kv.second.end());
    }
  compute_spawning(&proj);
  for (const auto& fm : proj.files) {
    Engine eng{options, proj, fm, result};
    for (const auto& fn : fm.functions) {
      eng.check_arena_escape(fn);
      eng.check_task_captures(fn);
      eng.check_strand_discipline(fn);
      eng.check_journal_bypass(fn);
    }
  }
  analysis::apply_baseline(result, baseline);
  return result;
}

}  // namespace mbrc::analyze
