// mbrc-analyze CLI: the shared static-analysis driver
// (tools/common/driver.hpp) around the lifetime/concurrency rule engine.
// Prints `file:line:col: RULE: message` plus the escape/flow chain.
#include "analyze.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  mbrc::analysis::ToolSpec spec;
  spec.name = "mbrc-analyze";
  spec.rules_example = "A1,A2,...";
  spec.run = [](const std::vector<mbrc::analysis::SourceFile>& files,
                const std::vector<std::string>& rules,
                const std::vector<mbrc::analysis::BaselineEntry>& baseline) {
    mbrc::analyze::AnalyzeOptions options;
    options.rules = rules;
    return mbrc::analyze::run_analyze(files, options, baseline);
  };
  return mbrc::analysis::run_tool(spec, argc, argv);
}
