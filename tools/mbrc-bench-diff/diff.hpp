// Schema-aware comparison of two BENCH_*.json artifacts (the files the
// bench/ binaries write): walks both documents in parallel, pairs metrics
// by their dotted path -- with "configs"-style arrays matched by each
// element's "name", not by index -- and classifies every numeric leaf by
// what its name says about direction:
//
//   higher-better  *_per_second, *speedup          (throughput)
//   lower-better   *_us/_ns/_seconds, p50/p95/p99, errors   (latency, cost)
//   info           everything else (config echo, sample arrays, gauges)
//
// A directional metric that moved past the threshold the wrong way is a
// regression. Info metrics are reported but never gate. The comparison is
// generic over the BENCH schema conventions (see DESIGN.md), so one tool
// covers every bench artifact in the repo without per-bench glue.
//
// The engine is a library so tests/bench_diff_test.cpp can drive it over
// in-memory documents; the CLI (main.cpp) is a thin file wrapper.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json_reader.hpp"

namespace mbrc::benchdiff {

enum class Direction { kHigherBetter, kLowerBetter, kInfo };

/// What a metric's path component says about which way is good. Exposed
/// for tests; `name` is the final path component ("edits_per_second").
Direction classify_metric(std::string_view name);

struct MetricDelta {
  std::string path;   // dotted, arrays by element name: configs[serial].p50
  double before = 0.0;
  double after = 0.0;
  Direction direction = Direction::kInfo;
  bool regressed = false;
};

struct DiffOptions {
  /// Fractional move in the bad direction that counts as a regression:
  /// 0.10 means throughput down >10% or latency up >10%.
  double threshold = 0.10;
};

struct DiffReport {
  /// False on structural mismatch: different "schema"/"bench" identity,
  /// a metric present before but missing after, or an array element whose
  /// name pairing failed. `error` says which. Metrics collected before the
  /// mismatch are still reported.
  bool schema_ok = true;
  std::string error;
  std::vector<MetricDelta> metrics;

  std::size_t regression_count() const;
};

/// Compares two parsed bench documents. Keys present only in `after` are
/// new metrics and are fine (benches grow fields); keys that disappeared
/// are a schema mismatch.
DiffReport diff_benchmarks(const obs::JsonValue& before,
                           const obs::JsonValue& after,
                           const DiffOptions& options = {});

/// Human-readable report: one line per metric (path, before, after, signed
/// % change, REGRESSION marker), then a summary line.
std::string format_report(const DiffReport& report,
                          const DiffOptions& options);

}  // namespace mbrc::benchdiff
