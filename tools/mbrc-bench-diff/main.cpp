// mbrc-bench-diff: compare two BENCH_*.json artifacts and gate on
// regressions.
//
//   mbrc-bench-diff [--threshold FRACTION] OLD.json NEW.json
//
// Prints one line per paired metric (path, before, after, % change) with
// directional metrics marked REGRESSION when they moved past the threshold
// the wrong way (default 0.10 = 10%). Exit status: 0 when no directional
// metric regressed; 1 when at least one did; 2 on usage errors, unreadable
// or unparseable input, or a schema mismatch between the two artifacts.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "diff.hpp"
#include "obs/json_reader.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mbrc-bench-diff [--threshold FRACTION] OLD.json "
               "NEW.json\n");
  return 2;
}

bool load_json(const std::string& path, mbrc::obs::JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mbrc-bench-diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const mbrc::obs::JsonParseResult parsed =
      mbrc::obs::parse_json(buffer.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "mbrc-bench-diff: %s: %s (at byte %zu)\n",
                 path.c_str(), parsed.error.c_str(), parsed.position);
    return false;
  }
  out = parsed.value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mbrc::benchdiff::DiffOptions options;
  std::string old_path;
  std::string new_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) return usage();
      options.threshold = std::atof(argv[++i]);
      if (options.threshold < 0.0) return usage();
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      return usage();
    }
  }
  if (new_path.empty()) return usage();

  mbrc::obs::JsonValue before;
  mbrc::obs::JsonValue after;
  if (!load_json(old_path, before) || !load_json(new_path, after)) return 2;

  const mbrc::benchdiff::DiffReport report =
      mbrc::benchdiff::diff_benchmarks(before, after, options);
  std::fputs(mbrc::benchdiff::format_report(report, options).c_str(),
             stdout);
  if (!report.schema_ok) return 2;
  return report.regression_count() > 0 ? 1 : 0;
}
