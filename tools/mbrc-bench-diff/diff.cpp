#include "diff.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mbrc::benchdiff {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_regression(Direction direction, double before, double after,
                   double threshold) {
  switch (direction) {
    case Direction::kHigherBetter:
      // A zero baseline cannot shrink; anything above it only improved.
      return before > 0.0 && after < before * (1.0 - threshold);
    case Direction::kLowerBetter:
      // From a zero baseline (e.g. errors: 0) ANY increase is a
      // regression -- there is no percentage of zero to allow.
      if (before == 0.0) return after > 0.0;
      return after > before * (1.0 + threshold);
    case Direction::kInfo:
      return false;
  }
  return false;
}

struct Walker {
  const DiffOptions& options;
  DiffReport& report;

  void mismatch(const std::string& what) {
    if (report.schema_ok) {
      report.schema_ok = false;
      report.error = what;
    }
  }

  void leaf(const std::string& path, std::string_view name, double before,
            double after) {
    MetricDelta d;
    d.path = path;
    d.before = before;
    d.after = after;
    d.direction = classify_metric(name);
    d.regressed =
        is_regression(d.direction, before, after, options.threshold);
    report.metrics.push_back(std::move(d));
  }

  void walk(const std::string& path, std::string_view name,
            const obs::JsonValue& before, const obs::JsonValue& after) {
    if (before.kind() != after.kind()) {
      mismatch(path + ": value kind changed");
      return;
    }
    switch (before.kind()) {
      case obs::JsonValue::Kind::kNumber:
        leaf(path, name, before.as_number(), after.as_number());
        return;
      case obs::JsonValue::Kind::kObject:
        walk_object(path, before, after);
        return;
      case obs::JsonValue::Kind::kArray:
        walk_array(path, before, after);
        return;
      case obs::JsonValue::Kind::kString:
      case obs::JsonValue::Kind::kBool:
      case obs::JsonValue::Kind::kNull:
        // Config echo (profile names, flags). Divergence here means the
        // two runs measured different setups -- a mismatch, not a delta.
        if (before.is_string() && before.as_string() != after.as_string())
          mismatch(path + ": \"" + before.as_string() + "\" vs \"" +
                   after.as_string() + "\"");
        else if (before.is_bool() && before.as_bool() != after.as_bool())
          mismatch(path + ": flag changed");
        return;
    }
  }

  void walk_object(const std::string& path, const obs::JsonValue& before,
                   const obs::JsonValue& after) {
    for (const auto& [key, value] : before.members()) {
      const obs::JsonValue* other = after.find(key);
      if (other == nullptr) {
        // Fields only ever grow; one that vanished means the artifacts
        // are from incompatible bench versions.
        mismatch(path.empty() ? key + ": missing in after"
                              : path + "." + key + ": missing in after");
        continue;
      }
      walk(path.empty() ? key : path + "." + key, key, value, *other);
    }
    // Keys only in `after` are new metrics: fine, nothing to compare.
  }

  void walk_array(const std::string& path, const obs::JsonValue& before,
                  const obs::JsonValue& after) {
    // Arrays of named objects (the "configs" convention) pair by name, so
    // reordering or appending configurations never misaligns the diff.
    const bool named = !before.array().empty() &&
                       before.array().front().find("name") != nullptr;
    if (named) {
      for (const obs::JsonValue& element : before.array()) {
        const std::string name = element.string_or("name", "");
        const obs::JsonValue* other = nullptr;
        for (const obs::JsonValue& candidate : after.array())
          if (candidate.string_or("name", "") == name) {
            other = &candidate;
            break;
          }
        if (other == nullptr) {
          mismatch(path + "[" + name + "]: missing in after");
          continue;
        }
        walk(path + "[" + name + "]", name, element, *other);
      }
      return;
    }
    // Bare number arrays are per-repetition samples: their order encodes
    // noise windows, not identity, so they carry no comparable metric.
  }
};

}  // namespace

Direction classify_metric(std::string_view name) {
  if (ends_with(name, "per_second") || ends_with(name, "speedup"))
    return Direction::kHigherBetter;
  if (ends_with(name, "_us") || ends_with(name, "_ns") ||
      ends_with(name, "_seconds") || name == "p50" || name == "p95" ||
      name == "p99" || name == "errors")
    return Direction::kLowerBetter;
  return Direction::kInfo;
}

std::size_t DiffReport::regression_count() const {
  std::size_t n = 0;
  for (const MetricDelta& m : metrics)
    if (m.regressed) ++n;
  return n;
}

DiffReport diff_benchmarks(const obs::JsonValue& before,
                           const obs::JsonValue& after,
                           const DiffOptions& options) {
  DiffReport report;
  Walker walker{options, report};
  if (!before.is_object() || !after.is_object()) {
    walker.mismatch("top level is not an object");
    return report;
  }
  // Identity gate: comparing different benches (or schema revisions) is a
  // usage error, not a sea of bogus deltas.
  if (before.int_or("schema", -1) != after.int_or("schema", -1)) {
    walker.mismatch("\"schema\" differs");
    return report;
  }
  if (before.string_or("bench", "") != after.string_or("bench", "")) {
    walker.mismatch("\"bench\" differs");
    return report;
  }
  walker.walk_object("", before, after);
  return report;
}

std::string format_report(const DiffReport& report,
                          const DiffOptions& options) {
  std::ostringstream os;
  char line[256];
  for (const MetricDelta& m : report.metrics) {
    const double change =
        m.before != 0.0 ? (m.after - m.before) / m.before * 100.0
        : m.after != 0.0 ? (m.after > 0.0 ? 100.0 : -100.0)
                         : 0.0;
    const char* tag = m.regressed ? "  REGRESSION"
                      : m.direction == Direction::kInfo ? "  (info)"
                                                        : "";
    std::snprintf(line, sizeof(line), "%-56s %14.4g %14.4g %+8.1f%%%s\n",
                  m.path.c_str(), m.before, m.after, change, tag);
    os << line;
  }
  if (!report.schema_ok) {
    os << "schema mismatch: " << report.error << '\n';
  } else {
    const std::size_t n = report.regression_count();
    std::snprintf(line, sizeof(line),
                  "%zu metric(s), %zu regression(s) past %.0f%%\n",
                  report.metrics.size(), n, options.threshold * 100.0);
    os << line;
  }
  return os.str();
}

}  // namespace mbrc::benchdiff
