// Shared CLI driver for the static-analysis tools. Each tool is the same
// thin filesystem wrapper around its rule engine:
//
//   <tool> [--baseline FILE] [--write-baseline FILE] [--rules R1,R2]
//          [--verbose] PATH...
//
// Directories recurse into .hpp/.cpp/.h/.cc; paths are emitted relative to
// the deepest src/tools/tests/bench component so baseline entries are
// machine-independent. Diagnostics print as `file:line:col: RULE: message`
// followed by the finding's flow chain (one indented line per step).
//
// Exit status: 0 when clean; 1 on new unsuppressed findings, suppressions
// without a reason, or stale baseline entries; 2 on usage/IO errors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "source_model.hpp"

namespace mbrc::analysis {

struct ToolSpec {
  /// Tool name for messages and the baseline header ("mbrc-lint").
  std::string name;
  /// Example rule list for --help ("R1,R2,...").
  std::string rules_example;
  /// Runs the tool's rule engine over the collected files.
  std::function<Report(const std::vector<SourceFile>& files,
                       const std::vector<std::string>& rules,
                       const std::vector<BaselineEntry>& baseline)>
      run;
};

/// Formats a diagnostic location. Column 0 (rule had no token) prints as
/// `file:line:`; otherwise `file:line:col:`.
std::string format_location(const std::string& path, int line, int col);

/// Parses argv, collects sources, runs the engine, prints the report.
int run_tool(const ToolSpec& spec, int argc, char** argv);

}  // namespace mbrc::analysis
