// Shared source-model layer for the project's static-analysis tools
// (tools/mbrc-lint, tools/mbrc-analyze).
//
// Both tools scan C++ without libclang: a tokenizer with a per-line comment
// side table (suppression comments live there), `file:line:col` findings, an
// inline-suppression grammar `// <tool>: allow(RULE, reason)` with a
// mandatory reason, and an FNV-1a baseline keyed on (rule, path,
// whitespace-normalized line text) so grandfathered entries survive edits
// elsewhere in the file but go stale when the flagged line itself changes.
// Stale entries fail the run, so baselines only ever shrink.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mbrc::analysis {

struct SourceFile {
  std::string path;
  std::string content;
};

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
  int col;   // 1-based byte column of the token's first character
};

struct FileScan {
  const SourceFile* file = nullptr;
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> comment text
  std::vector<std::string> lines;       // raw text, for baseline keys
};

/// Tokenizes one file. Comments are stripped into the side table;
/// preprocessor directives are skipped wholesale so `#include
/// <unordered_map>` never reaches the rules.
FileScan tokenize(const SourceFile& file);

// Token-stream helpers shared by every rule engine.

inline bool is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}
inline bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

/// Index just past the matching closer for the opener at `open`.
/// Returns t.size() when unbalanced.
std::size_t match(const std::vector<Token>& t, std::size_t open,
                  const char* o, const char* c);

/// Skips a balanced template argument list starting at a '<' token.
/// Unfused ">" tokens close one level each. Returns index past the final '>'.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open);

// ---------------------------------------------------------------------------
// Findings, suppression, baseline.
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;       // "R1".."R6" / "A1".."A4"
  std::string path;
  int line = 0;           // 1-based
  int col = 0;            // 1-based; 0 when the emitting rule has no token
  std::string message;
  /// Escape/flow chain ("derived from ... at line:col" steps); empty for
  /// single-site findings.
  std::vector<std::string> chain;
  std::uint64_t key = 0;  // baseline key: hash(rule, path, normalized line)
  bool suppressed = false;
  std::string suppress_reason;
  bool baselined = false;
};

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::uint64_t key = 0;
};

struct Report {
  /// Every finding, including suppressed and baselined ones.
  std::vector<Finding> findings;
  /// Baseline entries that matched no finding (stale: the grandfathered
  /// hazard was fixed or the line rewritten -- remove the entry).
  std::vector<BaselineEntry> stale_baseline;
  /// Suppression comments with an empty reason (treated as findings).
  std::vector<Finding> bad_suppressions;

  /// Findings that are neither suppressed nor baselined.
  std::vector<const Finding*> active() const;
  /// Nonzero-exit condition: active findings, bad suppressions or a stale
  /// baseline.
  bool clean() const;
};

/// Collapses runs of whitespace to single spaces and trims the ends, so
/// baseline keys survive reformatting that does not change the code.
std::string normalize_line(const std::string& text);

/// Baseline key of a finding: FNV-1a over rule, path and the finding line's
/// whitespace-normalized text.
std::uint64_t baseline_key(const std::string& rule, const std::string& path,
                           const std::string& line_text);

/// Parses the baseline format: one `rule<space>path<space>hex-key` per line;
/// blank lines and `#` comments ignored.
std::vector<BaselineEntry> parse_baseline(const std::string& text);

/// Serializes findings into the baseline format. `tool` names the emitting
/// tool in the header comment.
std::string format_baseline(const std::vector<Finding>& findings,
                            const std::string& tool = "mbrc-lint");

/// Looks for `<tag>: allow(RULE, reason)` in the comment table on `line` or
/// the line directly above (`tag` is "mbrc-lint" or "mbrc-analyze").
/// Returns 1 when found with a reason, -1 when found with an empty reason
/// (report as a bad suppression), 0 when absent.
int find_suppression(const std::map<int, std::string>& comments,
                     const std::string& tag, const std::string& rule,
                     int line, std::string* reason);

/// Fills in a finding's baseline key and suppression state from the scan it
/// was emitted against. A suppression with an empty reason appends a copy of
/// the finding to `bad_suppressions`.
void finish_finding(Finding& f, const FileScan& scan, const std::string& tag,
                    std::vector<Finding>& bad_suppressions);

/// Baseline matching: each entry absorbs at most one unsuppressed finding
/// with the same rule/path/key; leftovers land in `report.stale_baseline`.
void apply_baseline(Report& report,
                    const std::vector<BaselineEntry>& baseline);

}  // namespace mbrc::analysis
