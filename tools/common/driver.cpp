#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace fs = std::filesystem;

namespace mbrc::analysis {

namespace {

bool scannable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Paths are emitted relative to the deepest of src/tools/tests/bench on the
/// way, keeping baseline entries machine-independent.
std::string display_path(const fs::path& path) {
  const fs::path norm = path.lexically_normal();
  std::vector<std::string> parts;
  for (const auto& part : norm) parts.push_back(part.string());
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i] == "src" || parts[i] == "tools" || parts[i] == "tests" ||
        parts[i] == "bench") {
      fs::path rel;
      for (std::size_t j = i; j < parts.size(); ++j) rel /= parts[j];
      return rel.generic_string();
    }
  }
  return norm.generic_string();
}

}  // namespace

std::string format_location(const std::string& path, int line, int col) {
  std::string out = path + ':' + std::to_string(line);
  if (col > 0) out += ':' + std::to_string(col);
  return out;
}

int run_tool(const ToolSpec& spec, int argc, char** argv) {
  std::string baseline_path;
  std::string write_baseline_path;
  bool verbose = false;
  std::vector<std::string> rules;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << spec.name << ": " << arg << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--rules") {
      std::istringstream ss(next());
      std::string rule;
      while (std::getline(ss, rule, ',')) rules.push_back(rule);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << spec.name
                << " [--baseline FILE] [--write-baseline FILE] [--rules "
                << spec.rules_example << "] [--verbose] PATH...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << spec.name << ": unknown option " << arg << '\n';
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << spec.name << ": no input paths (try --help)\n";
    return 2;
  }

  std::vector<SourceFile> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::recursive_directory_iterator(input))
        if (entry.is_regular_file() && scannable(entry.path()))
          found.push_back(entry.path());
      std::sort(found.begin(), found.end());
      for (const fs::path& path : found) {
        SourceFile file;
        file.path = display_path(path);
        if (!read_file(path.string(), &file.content)) {
          std::cerr << spec.name << ": cannot read " << path << '\n';
          return 2;
        }
        files.push_back(std::move(file));
      }
    } else {
      SourceFile file;
      file.path = display_path(input);
      if (!read_file(input, &file.content)) {
        std::cerr << spec.name << ": cannot read " << input << '\n';
        return 2;
      }
      files.push_back(std::move(file));
    }
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << spec.name << ": cannot read baseline " << baseline_path
                << '\n';
      return 2;
    }
    baseline = parse_baseline(text);
  }

  const Report result = spec.run(files, rules, baseline);

  if (!write_baseline_path.empty()) {
    std::vector<Finding> grandfather;
    for (const Finding& f : result.findings)
      if (!f.suppressed) grandfather.push_back(f);
    std::ofstream os(write_baseline_path);
    os << format_baseline(grandfather, spec.name);
    std::cout << spec.name << ": wrote " << grandfather.size()
              << " baseline entries to " << write_baseline_path << '\n';
    return 0;
  }

  int suppressed = 0, baselined = 0;
  for (const Finding& f : result.findings) {
    const std::string loc = format_location(f.path, f.line, f.col);
    if (f.suppressed) {
      ++suppressed;
      if (verbose)
        std::cout << loc << ": " << f.rule << ": suppressed ("
                  << f.suppress_reason << ")\n";
      continue;
    }
    if (f.baselined) {
      ++baselined;
      if (verbose) std::cout << loc << ": " << f.rule << ": baselined\n";
      continue;
    }
    std::cout << loc << ": " << f.rule << ": " << f.message << '\n';
    for (const std::string& step : f.chain)
      std::cout << "    " << step << '\n';
  }
  for (const Finding& f : result.bad_suppressions)
    std::cout << format_location(f.path, f.line, f.col) << ": " << f.rule
              << ": " << f.message << '\n';
  for (const BaselineEntry& e : result.stale_baseline)
    std::cout << e.path << ": stale baseline entry (" << e.rule
              << "): the flagged line changed or was fixed -- remove the "
                 "entry or run --write-baseline\n";

  const auto active = result.active();
  std::cout << spec.name << ": " << files.size() << " files, "
            << active.size() << " active finding(s), " << suppressed
            << " suppressed, " << baselined << " baselined, "
            << result.stale_baseline.size() << " stale baseline entr"
            << (result.stale_baseline.size() == 1 ? "y" : "ies") << '\n';
  return result.clean() ? 0 : 1;
}

}  // namespace mbrc::analysis
