#include "source_model.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mbrc::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules care about. "<<" is safe to fuse
// (two adjacent '<' never open templates) but ">>" is NOT fused: it usually
// closes nested template argument lists.
const char* kPunct3[] = {"<=>", "->*", "..."};
const char* kPunct2[] = {"::", "->", "<<", "<=", ">=", "==", "!=", "+=",
                         "-=", "*=", "/=", "%=", "&&", "||", "&=", "|=",
                         "^=", "++", "--"};

}  // namespace

FileScan tokenize(const SourceFile& file) {
  FileScan scan;
  scan.file = &file;
  {
    std::istringstream is(file.content);
    std::string line;
    while (std::getline(is, line)) scan.lines.push_back(line);
  }

  const std::string& s = file.content;
  std::size_t i = 0;
  int line = 1;
  // Byte offset of the start of the current line; token col = i - line_start.
  std::size_t line_start = 0;
  const auto newline = [&](std::size_t at) {
    ++line;
    line_start = at + 1;
  };
  const auto append_comment = [&](int at, const std::string& text) {
    std::string& slot = scan.comments[at];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };
  const auto push = [&](TokKind kind, std::string text) {
    scan.tokens.push_back({kind, std::move(text), line,
                           static_cast<int>(i - line_start) + 1});
  };

  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      newline(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring continuations).
    if (c == '#' &&
        (scan.tokens.empty() || scan.tokens.back().line != line)) {
      while (i < s.size() && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
          newline(i + 1);
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      const std::size_t end = s.find('\n', i);
      const std::size_t stop = end == std::string::npos ? s.size() : end;
      append_comment(line, s.substr(i + 2, stop - i - 2));
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < s.size() && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') newline(j);
        ++j;
      }
      append_comment(start_line, s.substr(i + 2, j - i - 2));
      i = j + 2 > s.size() ? s.size() : j + 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != quote) {
        if (s[j] == '\\') ++j;
        if (j < s.size() && s[j] == '\n') newline(j);
        ++j;
      }
      push(TokKind::kString, s.substr(i, j + 1 - i));
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < s.size() && ident_char(s[j])) ++j;
      push(TokKind::kIdent, s.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < s.size() &&
             (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
        ++j;
      }
      push(TokKind::kNumber, s.substr(i, j - i));
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    std::string text(1, c);
    for (const char* p : kPunct3)
      if (s.compare(i, 3, p) == 0) text = p;
    if (text.size() == 1)
      for (const char* p : kPunct2)
        if (s.compare(i, 2, p) == 0) text = p;
    push(TokKind::kPunct, std::move(text));
    i += scan.tokens.back().text.size();
    continue;
  }
  return scan;
}

std::size_t match(const std::vector<Token>& t, std::size_t open,
                  const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i + 1;
  }
  return t.size();
}

std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    else if (t[i].text == ">" && --depth == 0) return i + 1;
    else if (t[i].text == "(") i = match(t, i, "(", ")") - 1;
  }
  return t.size();
}

std::string normalize_line(const std::string& text) {
  std::string out;
  bool space = true;  // swallow leading whitespace
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!space && !out.empty()) out += ' ';
      space = true;
    } else {
      out += c;
      space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::uint64_t baseline_key(const std::string& rule, const std::string& path,
                           const std::string& line_text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  mix(rule);
  mix(path);
  mix(normalize_line(line_text));
  return h;
}

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    BaselineEntry e;
    std::string key_hex;
    if (!(ls >> e.rule >> e.path >> key_hex)) continue;
    e.key = std::stoull(key_hex, nullptr, 16);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string format_baseline(const std::vector<Finding>& findings,
                            const std::string& tool) {
  std::ostringstream os;
  os << "# " << tool << " baseline: grandfathered findings.\n"
     << "# rule path key(rule,path,normalized-line). Entries go stale when\n"
     << "# the flagged line changes; remove them, never add new ones.\n";
  for (const Finding& f : findings) {
    os << f.rule << ' ' << f.path << ' ' << std::hex << f.key << std::dec
       << "  # line " << f.line << '\n';
  }
  return os.str();
}

int find_suppression(const std::map<int, std::string>& comments,
                     const std::string& tag, const std::string& rule,
                     int line, std::string* reason) {
  for (int probe : {line, line - 1}) {
    const auto it = comments.find(probe);
    if (it == comments.end()) continue;
    const std::string& c = it->second;
    std::size_t pos = c.find(tag + ":");
    if (pos == std::string::npos) continue;
    pos = c.find("allow", pos);
    if (pos == std::string::npos) continue;
    pos = c.find('(', pos);
    if (pos == std::string::npos) continue;
    const std::size_t close = c.find(')', pos);
    if (close == std::string::npos) continue;
    std::string inside = c.substr(pos + 1, close - pos - 1);
    const std::size_t comma = inside.find(',');
    std::string named = inside.substr(0, comma);
    named.erase(std::remove_if(named.begin(), named.end(), ::isspace),
                named.end());
    if (named != rule) continue;
    std::string r =
        comma == std::string::npos ? "" : inside.substr(comma + 1);
    while (!r.empty() && std::isspace(static_cast<unsigned char>(r.front())))
      r.erase(r.begin());
    while (!r.empty() && std::isspace(static_cast<unsigned char>(r.back())))
      r.pop_back();
    *reason = r;
    return r.empty() ? -1 : 1;
  }
  return 0;
}

void finish_finding(Finding& f, const FileScan& scan, const std::string& tag,
                    std::vector<Finding>& bad_suppressions) {
  std::string line_text;
  if (f.line >= 1 && f.line <= static_cast<int>(scan.lines.size()))
    line_text = scan.lines[static_cast<std::size_t>(f.line - 1)];
  f.key = baseline_key(f.rule, f.path, line_text);
  std::string reason;
  const int s = find_suppression(scan.comments, tag, f.rule, f.line, &reason);
  if (s > 0) {
    f.suppressed = true;
    f.suppress_reason = std::move(reason);
  } else if (s < 0) {
    Finding bad = f;
    bad.message = "suppression of " + bad.message + " -- allow(" + f.rule +
                  ") requires a non-empty reason";
    bad_suppressions.push_back(std::move(bad));
  }
}

void apply_baseline(Report& report,
                    const std::vector<BaselineEntry>& baseline) {
  std::multimap<std::uint64_t, std::size_t> by_key;
  for (std::size_t i = 0; i < baseline.size(); ++i)
    by_key.emplace(baseline[i].key, i);
  std::vector<bool> used(baseline.size(), false);
  for (Finding& f : report.findings) {
    if (f.suppressed) continue;
    const auto [lo, hi] = by_key.equal_range(f.key);
    for (auto it = lo; it != hi; ++it) {
      const BaselineEntry& e = baseline[it->second];
      if (!used[it->second] && e.rule == f.rule && e.path == f.path) {
        used[it->second] = true;
        f.baselined = true;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < baseline.size(); ++i)
    if (!used[i]) report.stale_baseline.push_back(baseline[i]);
}

std::vector<const Finding*> Report::active() const {
  std::vector<const Finding*> out;
  for (const Finding& f : findings)
    if (!f.suppressed && !f.baselined) out.push_back(&f);
  return out;
}

bool Report::clean() const {
  return active().empty() && bad_suppressions.empty() &&
         stale_baseline.empty();
}

}  // namespace mbrc::analysis
