// Thread-scaling of the full composition flow (google-benchmark): wall
// time of run_composition_flow on the largest standard profile (D4) at
// jobs = 1 / 2 / 4 / 8. The flow's outputs are bit-identical at every
// job count (asserted in tests/parallel_flow_test.cpp); this bench measures
// only the runtime effect of the per-subgraph fan-out, parallel STA and
// overlapped evaluation. The `speedup` counter is wall time at jobs = 1
// divided by wall time at the measured job count.
//
// Note: on a single-core host the global pool has zero workers and every
// "parallel" region runs on the calling thread, so jobs > 1 rows differ
// from jobs = 1 only by scheduling noise (the levelized CSR timing graph
// is the one STA implementation at every job count); run on a multi-core
// host to see actual thread scaling.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "obs/json.hpp"

using namespace mbrc;

namespace {

// The generated design is the bench fixture, built once: generation itself
// (placement iterations included) dwarfs a single flow run.
struct Fixture {
  lib::Library library;
  benchgen::GeneratedDesign generated;

  Fixture()
      : library(lib::make_default_library()), generated(build(library)) {}

  static benchgen::GeneratedDesign build(const lib::Library& library) {
    const auto profiles = benchgen::standard_profiles();
    const benchgen::DesignProfile* largest = &profiles.front();
    for (const benchgen::DesignProfile& p : profiles)
      if (p.register_cells > largest->register_cells) largest = &p;
    return benchgen::generate_design(library, *largest);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

double& baseline_seconds() {
  static double seconds = 0.0;
  return seconds;
}

// jobs -> mean flow seconds plus mean per-stage seconds, collected for the
// JSON emission in main().
struct RunRecord {
  double flow_seconds = 0.0;
  std::map<std::string, double> stage_seconds;
};
std::map<int, RunRecord>& recorded_runs() {
  static std::map<int, RunRecord> runs;
  return runs;
}

void BM_FlowAtJobs(benchmark::State& state) {
  Fixture& f = fixture();
  const int jobs = static_cast<int>(state.range(0));

  mbr::FlowOptions options;
  options.timing.clock_period = f.generated.calibrated_clock_period;
  options.jobs = jobs;

  double total_seconds = 0.0;
  std::map<std::string, double> stage_totals;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    netlist::Design design = f.generated.design;  // fresh copy per run
    state.ResumeTiming();

    const mbr::FlowResult result = mbr::run_composition_flow(design, options);
    benchmark::DoNotOptimize(result.mbrs_created);
    total_seconds += result.total_seconds;
    for (const auto& [stage, stats] : result.stages)
      stage_totals[stage] += stats.seconds;
    ++iterations;
  }

  const double mean_seconds =
      iterations > 0 ? total_seconds / static_cast<double>(iterations) : 0.0;
  if (jobs == 1) baseline_seconds() = mean_seconds;
  state.counters["flow_s"] = mean_seconds;
  if (baseline_seconds() > 0.0 && mean_seconds > 0.0)
    state.counters["speedup"] = baseline_seconds() / mean_seconds;
  RunRecord record;
  record.flow_seconds = mean_seconds;
  for (const auto& [stage, seconds] : stage_totals)
    record.stage_seconds[stage] =
        iterations > 0 ? seconds / static_cast<double>(iterations) : 0.0;
  recorded_runs()[jobs] = std::move(record);
}

// jobs = 1 must run first: it seeds the speedup baseline.
BENCHMARK(BM_FlowAtJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark run,
// the per-jobs means are also written as machine-readable JSON
// (BENCH_parallel_scaling.json in the working directory, or the path in
// MBRC_BENCH_JSON) so CI and the experiment log can diff them.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const char* env = std::getenv("MBRC_BENCH_JSON");
  const std::string out_path = env ? env : "BENCH_parallel_scaling.json";
  const double base =
      recorded_runs().count(1) ? recorded_runs().at(1).flow_seconds : 0.0;
  std::ofstream out(out_path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1).kv("bench", "parallel_scaling");
  w.kv("hardware_threads",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("runs").begin_array();
  for (const auto& [jobs, record] : recorded_runs()) {
    w.begin_object()
        .kv("jobs", jobs)
        .kv("flow_seconds", record.flow_seconds)
        .kv("speedup",
            record.flow_seconds > 0.0 ? base / record.flow_seconds : 0.0);
    // Mean wall seconds per flow stage: where the remaining serial time
    // lives at each job count (stage keys match FlowResult::stages).
    w.key("stage_seconds").begin_object();
    for (const auto& [stage, seconds] : record.stage_seconds)
      w.kv(stage, seconds);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  return 0;
}
