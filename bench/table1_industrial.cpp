// Reproduces Table 1: design characteristics before ('Base') and after
// ('Ours') incremental MBR composition on the five synthetic industrial
// profiles D1..D5 (see src/benchgen and DESIGN.md for how the profiles
// mirror the paper's designs at ~1/10 scale).
//
// Columns follow the paper: cells, area, total registers, composable
// registers, clock buffers, clock capacitance, TNS, failing endpoints,
// overflow edges, clock / other wire-length, and the composition runtime.
// Expected shapes (paper): total registers drop ~29% on average (~48% of
// the composable ones), clock cap ~6% and buffers ~4%, TNS / failing
// endpoints / overflow essentially unchanged, wire-length not increased.
#include <cstdlib>
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

namespace {

struct Row {
  std::string label;
  mbr::Metrics m;
  double seconds = 0.0;
};

void add_row(util::Table& table, const Row& row) {
  table.row()
      .cell(row.label)
      .cell(row.m.design.cells)
      .cell(row.m.design.area, 0)
      .cell(row.m.design.total_registers)
      .cell(row.m.composable_registers)
      .cell(row.m.clock_buffers)
      .cell(row.m.clock_cap, 0)
      .cell(row.m.clock_power_uw, 0)
      .cell(row.m.tns, 1)
      .cell(row.m.failing_endpoints)
      .cell(row.m.overflow_edges)
      .cell(row.m.clock_wire / 1000.0, 1)
      .cell(row.m.signal_wire / 1000.0, 1)
      .cell(row.seconds, 1);
}

double save(double base, double ours) {
  return base == 0.0 ? 0.0 : (base - ours) / base;
}

void add_save_row(util::Table& table, const mbr::Metrics& base,
                  const mbr::Metrics& ours) {
  table.row()
      .cell(std::string("Save"))
      .percent(save(static_cast<double>(base.design.cells),
                    static_cast<double>(ours.design.cells)))
      .percent(save(base.design.area, ours.design.area))
      .percent(save(static_cast<double>(base.design.total_registers),
                    static_cast<double>(ours.design.total_registers)))
      .percent(save(base.composable_registers, ours.composable_registers))
      .percent(save(base.clock_buffers, ours.clock_buffers))
      .percent(save(base.clock_cap, ours.clock_cap))
      .percent(save(base.clock_power_uw, ours.clock_power_uw))
      .percent(save(-base.tns, -ours.tns))
      .percent(save(base.failing_endpoints, ours.failing_endpoints))
      .percent(save(base.overflow_edges, ours.overflow_edges))
      .percent(save(base.clock_wire, ours.clock_wire))
      .percent(save(base.signal_wire, ours.signal_wire))
      .cell(std::string("-"));
}

}  // namespace

int main(int argc, char** argv) {
  const lib::Library library = lib::make_default_library();
  // Optional override of the parallel runtime's thread count; the table is
  // bit-identical at any value (only Time(s) changes).
  const int jobs = argc >= 2 ? std::atoi(argv[1]) : 0;

  util::Table table({"Design", "Cells", "Area(um2)", "TotRegs", "CompRegs",
                     "ClkBufs", "ClkCap(fF)", "ClkPwr(uW)", "TNS(ns)",
                     "FailEP", "OvflEdges", "WLclk(mm)", "WLother(mm)",
                     "Time(s)"});

  struct Avg {
    double regs = 0, comp = 0, cap = 0, bufs = 0, wire = 0;
    int n = 0;
  } avg;

  for (const benchgen::DesignProfile& profile : benchgen::standard_profiles()) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    netlist::Design& design = generated.design;

    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    if (jobs > 0) options.jobs = jobs;

    const mbr::FlowResult result = mbr::run_composition_flow(design, options);

    add_row(table, {profile.name + " Base", result.before, 0.0});
    add_row(table, {profile.name + " Ours", result.after,
                    result.compose_seconds});
    add_save_row(table, result.before, result.after);

    avg.regs += save(static_cast<double>(result.before.design.total_registers),
                     static_cast<double>(result.after.design.total_registers));
    avg.comp += save(result.before.composable_registers,
                     result.after.composable_registers);
    avg.cap += save(result.before.clock_cap, result.after.clock_cap);
    avg.bufs += save(result.before.clock_buffers, result.after.clock_buffers);
    avg.wire += save(result.before.clock_wire + result.before.signal_wire,
                     result.after.clock_wire + result.after.signal_wire);
    ++avg.n;
  }

  std::cout << "=== Table 1: industrial design characteristics before/after "
               "MBR composition ===\n\n";
  table.print(std::cout);
  std::cout << "\nAverages: total-register save "
            << 100.0 * avg.regs / avg.n << " % (paper: ~29 %), "
            << "composable-register save " << 100.0 * avg.comp / avg.n
            << " % (paper: ~48 %),\n  clock-cap save "
            << 100.0 * avg.cap / avg.n << " % (paper: ~6 %), clock-buffer save "
            << 100.0 * avg.bufs / avg.n << " % (paper: ~4 %), total-wire save "
            << 100.0 * avg.wire / avg.n << " % (paper: slightly positive)\n";
  return 0;
}
