// Ablation: the placement-aware weights of Sec. 3.2.
//
// With weights off, every candidate costs 1 and the ILP minimizes the raw
// register count with no regard for intervening registers. The paper argues
// the weights are what keep routing congestion and wire-length under
// control; this ablation quantifies that trade-off on D1-D3.
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main() {
  const lib::Library library = lib::make_default_library();
  const auto profiles = benchgen::standard_profiles();

  util::Table table({"Design", "Weights", "TotRegs", "OvflEdges", "MaxCong",
                     "WL total(mm)", "TNS(ns)"});

  for (int d = 0; d < 3; ++d) {
    for (const bool use_weights : {true, false}) {
      benchgen::GeneratedDesign generated =
          benchgen::generate_design(library, profiles[d]);
      mbr::FlowOptions options;
      options.timing.clock_period = generated.calibrated_clock_period;
      options.composition.enumeration.use_weights = use_weights;
      // Weights-off keeps every blocked candidate alive, which blows up the
      // exact branch & bound; cap the node budget identically on both arms
      // (the returned incumbents are then best-effort, which is the point
      // of the comparison anyway).
      options.composition.solver.max_nodes = 150'000;
      const mbr::FlowResult result =
          mbr::run_composition_flow(generated.design, options);
      table.row()
          .cell(profiles[d].name)
          .cell(std::string(use_weights ? "on" : "off"))
          .cell(result.after.design.total_registers)
          .cell(result.after.overflow_edges)
          .cell(result.after.max_congestion, 3)
          .cell((result.after.clock_wire + result.after.signal_wire) / 1000.0,
                1)
          .cell(result.after.tns, 1);
    }
  }

  std::cout << "=== Ablation: placement-aware weights on/off ===\n\n";
  table.print(std::cout);
  std::cout
      << "\nFinding: weights-off merges considerably more registers (blocked\n"
         "candidates are no longer refused) while our bounding-box congestion\n"
         "model barely moves -- the interleaved-MBR hotspots the paper's\n"
         "weights guard against only materialize in detailed routing, below\n"
         "this model's resolution. The ablation therefore shows the *cost*\n"
         "side of the weights (fewer merges) faithfully, and the protection\n"
         "side only as a small max-congestion delta.\n";
  return 0;
}
