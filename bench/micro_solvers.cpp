// Microbenchmarks of the algorithmic kernels (google-benchmark): simplex
// LP, the exact set-partitioning branch & bound, Bron-Kerbosch, candidate
// enumeration on the worked example, and the two MBR placement solvers
// (the paper's LP vs the weighted-median fast path).
#include <benchmark/benchmark.h>

#include "geom/convex_hull.hpp"
#include "ilp/set_partition.hpp"
#include "lp/simplex.hpp"
#include "mbr/candidates.hpp"
#include "mbr/cliques.hpp"
#include "mbr/placement.hpp"
#include "mbr/worked_example.hpp"
#include "util/rng.hpp"

using namespace mbrc;

namespace {

void BM_SimplexPlacementShapedLp(benchmark::State& state) {
  const int pins = static_cast<int>(state.range(0));
  util::Rng rng(11);
  std::vector<mbr::PinBox> boxes;
  for (int i = 0; i < pins; ++i) {
    const double x = rng.uniform_real(0, 200), y = rng.uniform_real(0, 200);
    boxes.push_back({{x, y, x + rng.uniform_real(0, 40),
                      y + rng.uniform_real(0, 40)},
                     {rng.uniform_real(0, 10), rng.uniform_real(0, 2)}});
  }
  const geom::Rect region{0, 0, 200, 200};
  for (auto _ : state)
    benchmark::DoNotOptimize(mbr::optimal_position_lp(boxes, region));
}
BENCHMARK(BM_SimplexPlacementShapedLp)->Arg(4)->Arg(16)->Arg(64);

void BM_WeightedMedianPlacement(benchmark::State& state) {
  const int pins = static_cast<int>(state.range(0));
  util::Rng rng(11);
  std::vector<mbr::PinBox> boxes;
  for (int i = 0; i < pins; ++i) {
    const double x = rng.uniform_real(0, 200), y = rng.uniform_real(0, 200);
    boxes.push_back({{x, y, x + rng.uniform_real(0, 40),
                      y + rng.uniform_real(0, 40)},
                     {rng.uniform_real(0, 10), rng.uniform_real(0, 2)}});
  }
  const geom::Rect region{0, 0, 200, 200};
  for (auto _ : state)
    benchmark::DoNotOptimize(mbr::optimal_position_median(boxes, region));
}
BENCHMARK(BM_WeightedMedianPlacement)->Arg(4)->Arg(16)->Arg(64);

void BM_SetPartition(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  util::Rng rng(77);
  ilp::SetPartitionProblem problem;
  problem.element_count = elements;
  for (int e = 0; e < elements; ++e)
    problem.candidates.push_back({{e}, 1.0});
  for (int c = 0; c < elements * 6; ++c) {
    ilp::SetPartitionCandidate cand;
    const int size = static_cast<int>(rng.uniform_int(2, 5));
    for (int k = 0; k < size; ++k) {
      const int e = static_cast<int>(rng.uniform_int(0, elements - 1));
      if (std::find(cand.elements.begin(), cand.elements.end(), e) ==
          cand.elements.end())
        cand.elements.push_back(e);
    }
    cand.weight = 1.0 / cand.elements.size();
    problem.candidates.push_back(std::move(cand));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(ilp::solve_set_partition(problem));
}
BENCHMARK(BM_SetPartition)->Arg(10)->Arg(20)->Arg(30);

void BM_BronKerbosch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(5);
  mbr::CompatibilityGraph graph;
  const mbr::WorkedExample example = mbr::make_worked_example();
  for (int i = 0; i < n; ++i) {
    mbr::RegisterInfo info = example.graph.node(0);
    info.footprint = geom::Rect::around(
        {rng.uniform_real(0, 100), rng.uniform_real(0, 100)}, 1.5, 0.9);
    graph.add_node(info);
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.chance(0.4)) graph.add_edge(i, j);
  graph.finalize();
  std::vector<int> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i] = i;
  for (auto _ : state)
    benchmark::DoNotOptimize(mbr::maximal_cliques(graph, nodes));
}
BENCHMARK(BM_BronKerbosch)->Arg(15)->Arg(30)->Arg(45);

void BM_CandidateEnumerationWorkedExample(benchmark::State& state) {
  const mbr::WorkedExample example = mbr::make_worked_example();
  std::vector<int> subgraph(example.graph.node_count());
  for (int i = 0; i < example.graph.node_count(); ++i) subgraph[i] = i;
  const mbr::BlockerIndex blockers(example.graph);
  for (auto _ : state)
    benchmark::DoNotOptimize(mbr::enumerate_candidates(
        example.graph, *example.library, blockers, subgraph));
}
BENCHMARK(BM_CandidateEnumerationWorkedExample);

void BM_ConvexHull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(3);
  std::vector<geom::Point> points;
  for (int i = 0; i < n; ++i)
    points.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  for (auto _ : state) {
    auto copy = points;
    benchmark::DoNotOptimize(geom::convex_hull(std::move(copy)));
  }
}
BENCHMARK(BM_ConvexHull)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
