// Ablation: the subgraph bound of the K-partitioning step (Sec. 3).
//
// The paper reports that bounds below ~20 nodes cost significant QoR
// (composed registers) while bounds above 30 only add runtime. This sweep
// reproduces that trade-off on D1.
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main() {
  const lib::Library library = lib::make_default_library();
  const auto profile = benchgen::standard_profiles()[0];

  util::Table table({"Bound", "TotRegs", "MBRs", "Candidates", "ILP nodes",
                     "Compose time(s)"});

  for (const int bound : {8, 12, 16, 20, 25, 30, 40, 50}) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    options.composition.partition.max_nodes = bound;
    const mbr::FlowResult result =
        mbr::run_composition_flow(generated.design, options);
    table.row()
        .cell(bound)
        .cell(result.after.design.total_registers)
        .cell(result.mbrs_created)
        .cell(result.plan.candidate_count)
        .cell(result.plan.ilp_nodes)
        .cell(result.compose_seconds, 2);
  }

  std::cout << "=== Ablation: subgraph partition bound (paper uses 30) ===\n\n";
  table.print(std::cout);
  std::cout << "\nExpected: register count degrades below ~20 nodes; beyond "
               "30 the extra runtime buys little (paper Sec. 3).\n";
  return 0;
}
