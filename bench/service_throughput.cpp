// Load generator for the composition daemon (src/service): N concurrent
// sessions fire randomized edit streams (moves, swaps, skews) interleaved
// with timing queries over the daemon's unix socket -- the transport real
// clients use -- and the bench reports aggregate edits/sec plus
// p50/p95/p99 query latency per client model.
//
// Client models:
//   serial_baseline:  one session, one synchronous client -- every request
//                     is a blocking socket round-trip (send one line, wait
//                     for its response). This is the "serial single-session
//                     baseline" the concurrent configurations must beat.
//   pipelined_*:      clients write a burst of requests in one send() and
//                     then read the burst's responses, so per-request
//                     syscalls and thread wakeups are amortized.
//
// Every configuration talks to an identically configured daemon (same
// `jobs`), runs the same total number of rounds (split across its
// sessions, so every run covers a comparable wall-time window), and every
// session opens the same design. Edit streams are constructed to be always
// valid (absolute moves clamped by the largest footprint in the swap
// family, swaps within the same function/bits/scan family), and the bench
// fails if any request errors.
//
// The host's background load drifts on a seconds timescale, so a single
// pass per config confounds configuration effects with noise windows.
// Repetitions are interleaved (every config samples every window) and each
// config reports its best repetition.
//
// Results go to BENCH_service_throughput.json (or argv[1]) with
// "schema": 1.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "geom/rect.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "service/daemon.hpp"
#include "service/socket_server.hpp"
#include "util/rng.hpp"

using namespace mbrc;

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

struct Settings {
  std::string out_path = "BENCH_service_throughput.json";
  int registers = 32;       // per-session design size (custom profile)
  // Rounds per repetition, SPLIT across a config's sessions (1 round =
  // 1 edit batch + 1 timing query). Holding the total constant makes every
  // configuration run the same amount of work over a comparable wall-time
  // window, so best-of-repetition selection cannot favor a config merely
  // because its repetitions were shorter.
  int rounds = 2400;
  // Small batches keep rounds light (interactive-editor shaped): per-round
  // compute stays comparable to the transport cost being measured.
  int edits_per_batch = 2;
  int daemon_jobs = 4;      // identical for every configuration
  int repetitions = 4;      // interleaved; best repetition per config wins
  std::uint64_t design_seed = 1905;
  // CI smoke runs are short and share noisy runners: --advisory-speedup
  // reports the concurrent-vs-serial comparison without gating the exit
  // code on it (request errors always gate).
  bool advisory_speedup = false;
};

struct BenchConfig {
  std::string name;
  int sessions = 1;
  bool pipelined = false;
};

/// Static facts an edit-stream generator needs about the design every
/// session opens: movable register ids with their dimensions and legal
/// swap variants, plus the core box. No evolving state is tracked because
/// every generated edit is valid regardless of history.
struct Workload {
  geom::Rect core;
  struct Reg {
    std::int32_t id = 0;
    double width = 0.0;
    double height = 0.0;
    std::vector<std::string> variants;
  };
  std::vector<Reg> regs;
};

Workload make_workload(const lib::Library& library, const Settings& settings) {
  benchgen::DesignProfile profile;
  profile.name = "svcbench";
  profile.seed = settings.design_seed;
  profile.register_cells = settings.registers;
  const benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  const netlist::Design& design = generated.design;

  Workload w;
  w.core = design.core();
  for (netlist::CellId reg : design.registers()) {
    const netlist::Cell& cell = design.cell(reg);
    if (cell.fixed) continue;
    Workload::Reg r;
    r.id = reg.index;
    // Clamp moves by the LARGEST footprint in the swap family: a swap can
    // widen the cell mid-stream, and a later move must stay valid against
    // whatever variant the session currently holds.
    r.width = cell.width();
    r.height = cell.height();
    for (const lib::RegisterCell* v :
         design.library().cells_for(cell.reg->function, cell.reg->bits))
      if (v->scan_style == cell.reg->scan_style) {
        r.variants.push_back(v->name);
        r.width = std::max(r.width, v->width);
        r.height = std::max(r.height, v->height);
      }
    w.regs.push_back(std::move(r));
  }
  return w;
}

std::string open_request(const std::string& session,
                         const Settings& settings) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", 0).kv("cmd", "open_design").kv("session", session);
  w.kv("profile", "svcbench")
      .kv("registers", static_cast<std::int64_t>(settings.registers))
      .kv("seed", static_cast<std::int64_t>(settings.design_seed));
  w.end_object();
  return os.str();
}

std::string query_request(std::int64_t id, const std::string& session) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("cmd", "query_timing");
  w.kv("session", session).end_object();
  return os.str();
}

std::string edits_request(std::int64_t id, const std::string& session,
                          const Workload& w, util::Rng& rng, int batch) {
  std::ostringstream os;
  obs::JsonWriter jw(os, 0);
  jw.begin_object().kv("id", id).kv("cmd", "apply_edits");
  jw.kv("session", session);
  jw.key("edits").begin_array();
  for (int b = 0; b < batch; ++b) {
    const Workload::Reg& reg = w.regs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(w.regs.size()) - 1))];
    const double roll = rng.uniform_real(0.0, 1.0);
    jw.begin_object();
    if (roll < 0.35) {
      jw.kv("op", "move").kv("cell", static_cast<std::int64_t>(reg.id));
      jw.kv("x", rng.uniform_real(w.core.xlo, w.core.xhi - reg.width));
      jw.kv("y", rng.uniform_real(w.core.ylo, w.core.yhi - reg.height));
    } else if (roll < 0.9 || reg.variants.empty()) {
      jw.kv("op", "skew").kv("cell", static_cast<std::int64_t>(reg.id));
      jw.kv("skew", rng.uniform_real(-0.08, 0.08));
    } else {
      jw.kv("op", "swap").kv("cell", static_cast<std::int64_t>(reg.id));
      jw.kv("variant",
            reg.variants[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(reg.variants.size()) - 1))]);
    }
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  return os.str();
}

bool response_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

/// A blocking NDJSON client connection to the daemon's unix socket.
class Connection {
public:
  ~Connection() { close_fd(); }

  bool connect_to(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      close_fd();
      return false;
    }
    return true;
  }

  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_all(line + "\n"); }

  /// Next response line (without the newline); empty on EOF/error.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = inbuf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = inbuf_.substr(0, nl);
        inbuf_.erase(0, nl + 1);
        return line;
      }
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return {};
      inbuf_.append(buffer, static_cast<std::size_t>(n));
    }
  }

  /// One synchronous round-trip.
  std::string request(const std::string& line) {
    if (!send_line(line)) return {};
    return recv_line();
  }

  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

private:
  int fd_ = -1;
  std::string inbuf_;
};

/// All clients (and the coordinator) rendezvous here so wall-clock starts
/// when every session is open and warmed up.
class Latch {
public:
  explicit Latch(int count) : count_(count) {}
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--count_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return count_ == 0; });
  }

private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

struct ClientResult {
  std::int64_t edits_applied = 0;
  std::int64_t queries = 0;
  std::int64_t errors = 0;
  std::vector<double> query_latency_us;
};

/// Rounds per burst for pipelined clients (2 requests per round).
constexpr int kBurstRounds = 16;

// Both models use the same connection; the only variable is burst depth.
//
//   synchronous: send each request alone and block for its response
//                (burst depth 1 -- a full socket round-trip per request)
//   pipelined:   write kBurstRounds rounds in one send(), then read the
//                burst's responses; query latency is measured from the
//                burst's send to that query's response, i.e. it includes
//                queueing behind the burst
ClientResult run_client(Connection& conn, const std::string& session,
                        const Workload& w, const Settings& settings,
                        int rounds, bool pipelined,
                        std::uint64_t stream_seed) {
  ClientResult result;
  result.query_latency_us.reserve(static_cast<std::size_t>(rounds));
  util::Rng rng(stream_seed);
  std::int64_t next_id = 1;

  const auto score = [&](const std::string& response, bool is_query,
                         Clock::time_point t0) {
    if (is_query)
      result.query_latency_us.push_back(micros_between(t0, Clock::now()));
    if (!response_ok(response)) {
      ++result.errors;
      return;
    }
    if (is_query)
      ++result.queries;
    else
      result.edits_applied += settings.edits_per_batch;
  };

  if (!pipelined) {
    for (int r = 0; r < rounds; ++r) {
      const Clock::time_point t_apply = Clock::now();
      score(conn.request(edits_request(next_id++, session, w, rng,
                                       settings.edits_per_batch)),
            false, t_apply);
      const Clock::time_point t_query = Clock::now();
      score(conn.request(query_request(next_id++, session)), true, t_query);
    }
    return result;
  }

  std::string burst;
  for (int begin = 0; begin < rounds; begin += kBurstRounds) {
    const int count = std::min(rounds - begin, kBurstRounds);
    burst.clear();
    for (int r = 0; r < count; ++r) {
      burst += edits_request(next_id++, session, w, rng,
                             settings.edits_per_batch);
      burst += '\n';
      burst += query_request(next_id++, session);
      burst += '\n';
    }
    const Clock::time_point t0 = Clock::now();
    if (!conn.send_all(burst)) {
      result.errors += 2 * count;
      return result;
    }
    for (int r = 0; r < count; ++r) {
      score(conn.recv_line(), false, t0);
      score(conn.recv_line(), true, t0);
    }
  }
  return result;
}

struct ConfigResult {
  BenchConfig config;
  double wall_seconds = 0.0;
  std::int64_t edits_applied = 0;
  std::int64_t queries = 0;
  std::int64_t errors = 0;
  double edits_per_second = 0.0;
  double queries_per_second = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  // Daemon-side pool.queue_depth_peak read via the stats verb at teardown:
  // how deep the request backlog got behind this configuration's load.
  std::int64_t queue_depth_max = 0;
  std::vector<double> samples_edits_per_second;  // one per repetition
};

/// pool.queue_depth_peak from a stats response; 0 on any parse miss (an
/// inline-serial daemon reports all-zero pool gauges, so 0 is also the
/// honest floor).
std::int64_t parse_queue_depth_peak(const std::string& stats_response) {
  const obs::JsonParseResult parsed = obs::parse_json(stats_response);
  if (!parsed.ok) return 0;
  const obs::JsonValue* pool = parsed.value.find("pool");
  if (pool == nullptr) return 0;
  return pool->int_or("queue_depth_peak", 0);
}

ConfigResult run_config(const lib::Library& library, const Workload& workload,
                        const Settings& settings, const BenchConfig& config,
                        const std::string& socket_path) {
  ConfigResult out;
  out.config = config;

  service::DaemonOptions daemon_options;
  daemon_options.jobs = settings.daemon_jobs;
  service::Daemon daemon(library, daemon_options);
  service::SocketServerOptions server_options;
  server_options.path = socket_path;
  server_options.poll_interval_ms = 5;
  service::SocketServer server(daemon, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "socket server: %s\n", server.error().c_str());
    return out;
  }
  std::thread server_thread([&server] { server.run(); });

  const int rounds_per_session =
      std::max(1, settings.rounds / config.sessions);
  std::vector<ClientResult> results(
      static_cast<std::size_t>(config.sessions));
  Latch start(config.sessions + 1);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config.sessions));
  for (int s = 0; s < config.sessions; ++s) {
    clients.emplace_back([&, s] {
      // Session setup (connect, open, engine warm-up) happens before the
      // rendezvous: the bench measures steady-state edit/query throughput,
      // not benchgen or the first full timing build.
      const std::string session = "s" + std::to_string(s);
      Connection conn;
      ClientResult& result = results[static_cast<std::size_t>(s)];
      if (!conn.connect_to(socket_path) ||
          !response_ok(conn.request(open_request(session, settings))) ||
          !response_ok(conn.request(query_request(0, session)))) {
        ++result.errors;
        start.arrive_and_wait();
        return;
      }
      start.arrive_and_wait();
      result = run_client(conn, session, workload, settings,
                          rounds_per_session, config.pipelined,
                          0xbe9c'0000u + static_cast<std::uint64_t>(s));
    });
  }

  const Clock::time_point t0 = Clock::now();
  start.arrive_and_wait();
  for (std::thread& t : clients) t.join();
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Teardown (untimed): grab the daemon's pool gauges over the same wire
  // the load used, then ask it to shut down so the accept loop and the
  // per-connection threads exit, and join the server.
  {
    Connection conn;
    if (conn.connect_to(socket_path)) {
      out.queue_depth_max =
          parse_queue_depth_peak(conn.request("{\"id\":0,\"cmd\":\"stats\"}"));
      conn.request("{\"id\":0,\"cmd\":\"shutdown\"}");
    }
  }
  server_thread.join();

  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    out.edits_applied += r.edits_applied;
    out.queries += r.queries;
    out.errors += r.errors;
    latencies.insert(latencies.end(), r.query_latency_us.begin(),
                     r.query_latency_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_us = obs::Histogram::percentile(latencies, 0.50);
  out.p95_us = obs::Histogram::percentile(latencies, 0.95);
  out.p99_us = obs::Histogram::percentile(latencies, 0.99);
  if (out.wall_seconds > 0.0) {
    out.edits_per_second =
        static_cast<double>(out.edits_applied) / out.wall_seconds;
    out.queries_per_second =
        static_cast<double>(out.queries) / out.wall_seconds;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Settings settings;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&](const char* name, int& slot) {
      if (arg == name && i + 1 < argc) {
        slot = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (int_flag("--rounds", settings.rounds)) continue;
    if (int_flag("--registers", settings.registers)) continue;
    if (int_flag("--batch", settings.edits_per_batch)) continue;
    if (int_flag("--jobs", settings.daemon_jobs)) continue;
    if (int_flag("--reps", settings.repetitions)) continue;
    if (arg == "--advisory-speedup") {
      settings.advisory_speedup = true;
      continue;
    }
    settings.out_path = arg;
  }

  const lib::Library library = lib::make_default_library();
  const Workload workload = make_workload(library, settings);
  const std::string socket_path =
      "/tmp/mbrc-bench-" + std::to_string(::getpid()) + ".sock";

  const std::vector<BenchConfig> configs = {
      {"serial_baseline", 1, false},
      {"pipelined_single", 1, true},
      {"concurrent_4", 4, true},
      {"concurrent_8", 8, true},
  };

  std::printf(
      "service_throughput: %d registers, %d total rounds x %d edits, daemon "
      "jobs=%d, best of %d, socket transport\n",
      settings.registers, settings.rounds, settings.edits_per_batch,
      settings.daemon_jobs, settings.repetitions);

  std::vector<ConfigResult> rows(configs.size());
  std::vector<std::vector<double>> samples(configs.size());
  for (int rep = 0; rep < settings.repetitions; ++rep) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      ConfigResult result =
          run_config(library, workload, settings, configs[c], socket_path);
      samples[c].push_back(result.edits_per_second);
      rows[c].errors += result.errors;  // errors from EVERY repetition count
      // Deepest backlog seen across ALL repetitions, not just the best one:
      // the gauge answers "how far behind did this config get", and the
      // worst window is the interesting answer.
      const std::int64_t depth =
          std::max(rows[c].queue_depth_max, result.queue_depth_max);
      if (rep == 0 || result.edits_per_second > rows[c].edits_per_second) {
        const std::int64_t errors = rows[c].errors;
        rows[c] = std::move(result);
        rows[c].errors = errors;
      }
      rows[c].queue_depth_max = depth;
    }
  }
  for (std::size_t c = 0; c < configs.size(); ++c)
    rows[c].samples_edits_per_second = std::move(samples[c]);

  std::printf("%18s %9s %8s %12s %10s %9s %9s %9s %7s\n", "config", "sessions",
              "wall_s", "edits/sec", "query/sec", "p50_us", "p95_us", "p99_us",
              "errors");
  for (const ConfigResult& r : rows)
    std::printf("%18s %9d %8.3f %12.0f %10.0f %9.1f %9.1f %9.1f %7lld\n",
                r.config.name.c_str(), r.config.sessions, r.wall_seconds,
                r.edits_per_second, r.queries_per_second, r.p50_us, r.p95_us,
                r.p99_us, static_cast<long long>(r.errors));

  const ConfigResult& serial = rows[0];
  const ConfigResult& concurrent4 = rows[2];
  const double speedup =
      serial.edits_per_second > 0.0
          ? concurrent4.edits_per_second / serial.edits_per_second
          : 0.0;

  std::ofstream out(settings.out_path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1).kv("bench", "service_throughput");
  w.kv("transport", "unix socket");
  w.key("design").begin_object();
  w.kv("profile", "svcbench")
      .kv("registers", static_cast<std::int64_t>(settings.registers))
      .kv("seed", static_cast<std::int64_t>(settings.design_seed));
  w.end_object();
  w.kv("daemon_jobs", static_cast<std::int64_t>(settings.daemon_jobs));
  w.kv("rounds_total", static_cast<std::int64_t>(settings.rounds));
  w.kv("edits_per_batch",
       static_cast<std::int64_t>(settings.edits_per_batch));
  w.kv("repetitions", static_cast<std::int64_t>(settings.repetitions));
  w.kv("selection", "best repetition per config, interleaved");
  w.key("configs").begin_array();
  for (const ConfigResult& r : rows) {
    w.begin_object()
        .kv("name", r.config.name)
        .kv("sessions", static_cast<std::int64_t>(r.config.sessions))
        .kv("pipelined", r.config.pipelined)
        .kv("wall_seconds", r.wall_seconds)
        .kv("edits_applied", r.edits_applied)
        .kv("edits_per_second", r.edits_per_second)
        .kv("queries", r.queries)
        .kv("queries_per_second", r.queries_per_second);
    w.key("query_latency_us")
        .begin_object()
        .kv("p50", r.p50_us)
        .kv("p95", r.p95_us)
        .kv("p99", r.p99_us)
        .end_object();
    w.kv("queue_depth_max", r.queue_depth_max);
    w.key("samples_edits_per_second").begin_array();
    for (double s : r.samples_edits_per_second) w.value(s);
    w.end_array();
    w.kv("errors", r.errors).end_object();
  }
  w.end_array();
  w.kv("concurrent_4_vs_serial_speedup", speedup);
  w.end_object();
  out << '\n';
  std::printf("wrote %s (concurrent_4 vs serial: %.2fx)\n",
              settings.out_path.c_str(), speedup);

  std::int64_t errors = 0;
  for (const ConfigResult& r : rows) errors += r.errors;
  const bool beats_serial =
      concurrent4.edits_per_second > serial.edits_per_second;
  const bool ok =
      errors == 0 && (beats_serial || settings.advisory_speedup);
  if (!beats_serial && settings.advisory_speedup && errors == 0)
    std::printf(
        "note: concurrent_4 did not beat serial this run "
        "(advisory under --advisory-speedup)\n");
  if (!ok)
    std::printf(
        "FAIL: expected zero errors and concurrent_4 edits/sec above the "
        "serial baseline\n");
  return ok ? 0 : 1;
}
