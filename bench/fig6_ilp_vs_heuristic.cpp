// Reproduces Fig. 6: the number of total registers after composition,
// normalized to the pre-composition count, when allocation is done by the
// placement-aware ILP versus the maximal-clique greedy heuristic (refs
// [8]/[12] style). Expected shape (paper): the ILP wins on every design,
// ~12% fewer registers on average.
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main() {
  const lib::Library library = lib::make_default_library();

  util::Table table({"Design", "Base regs", "ILP regs", "Heur regs",
                     "ILP norm", "Heur norm", "ILP advantage"});
  double advantage_sum = 0.0;
  int designs = 0;

  for (const benchgen::DesignProfile& profile : benchgen::standard_profiles()) {
    std::int64_t base = 0, ilp = 0, heuristic = 0;
    for (const mbr::Allocator allocator :
         {mbr::Allocator::kIlp, mbr::Allocator::kHeuristic}) {
      benchgen::GeneratedDesign generated =
          benchgen::generate_design(library, profile);
      mbr::FlowOptions options;
      options.timing.clock_period = generated.calibrated_clock_period;
      options.allocator = allocator;
      const mbr::FlowResult result =
          mbr::run_composition_flow(generated.design, options);
      base = result.before.design.total_registers;
      (allocator == mbr::Allocator::kIlp ? ilp : heuristic) =
          result.after.design.total_registers;
    }

    const double ilp_norm = static_cast<double>(ilp) / base;
    const double heur_norm = static_cast<double>(heuristic) / base;
    const double advantage = (heur_norm - ilp_norm) / heur_norm;
    advantage_sum += advantage;
    ++designs;

    table.row()
        .cell(profile.name)
        .cell(base)
        .cell(ilp)
        .cell(heuristic)
        .cell(ilp_norm, 3)
        .cell(heur_norm, 3)
        .percent(advantage);
  }

  std::cout << "=== Fig. 6: normalized register count, ILP vs heuristic ===\n\n";
  table.print(std::cout);
  std::cout << "\nAverage ILP advantage: "
            << 100.0 * advantage_sum / designs
            << " % fewer registers than the heuristic (paper: ~12 %).\n";
  return 0;
}
