// Design-size x thread-count scaling of the full composition flow.
//
// For every scale factor (benchgen::scaled_profiles: D1 with factor-times
// the registers) the design is generated once, then the flow runs at each
// jobs value on a fresh copy. Reported per run: flow wall seconds, speedup
// against the first jobs value at the same size, and the per-stage wall
// breakdown (FlowResult::stages) -- the breakdown is what says which stage
// eats the scaling headroom when speedup plateaus. FlowResult::counters is
// deterministic output (DESIGN.md §11): every run is checked bit-identical
// against the first jobs value at its size and the verdict lands in the
// JSON, so a scaling row can never silently come from a divergent result.
//
// Wall times are measurement, not contract: on a single-core host
// (hardware_threads 1 in the JSON) every jobs value runs the same work on
// the calling thread and speedup hovers around 1.0 by construction.
//
// Knobs (all optional):
//   MBRC_SCALING_FACTORS  comma list of scale factors   (default "1,2,5")
//   MBRC_SCALING_JOBS     comma list of jobs values     (default "1,2,4,8")
//   MBRC_BENCH_JSON       output path     (default BENCH_flow_scaling.json)
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "obs/json.hpp"
#include "util/stopwatch.hpp"

using namespace mbrc;

namespace {

std::vector<int> parse_list(const char* env, const std::string& fallback) {
  const char* raw = std::getenv(env);
  std::istringstream in(raw ? raw : fallback);
  std::vector<int> values;
  std::string token;
  while (std::getline(in, token, ',')) {
    const int value = std::atoi(token.c_str());
    if (value >= 1) values.push_back(value);
  }
  return values;
}

struct Run {
  int factor = 0;
  std::string profile;
  int registers = 0;
  double generate_seconds = 0.0;
  int jobs = 0;
  double flow_seconds = 0.0;
  double speedup = 0.0;
  int mbrs_created = 0;
  bool counters_match = false;
  std::map<std::string, double> stage_seconds;
};

}  // namespace

int main() {
  const std::vector<int> factors = parse_list("MBRC_SCALING_FACTORS", "1,2,5");
  const std::vector<int> jobs_values =
      parse_list("MBRC_SCALING_JOBS", "1,2,4,8");
  if (factors.empty() || jobs_values.empty()) {
    std::cerr << "flow_scaling: empty factor or jobs list\n";
    return 1;
  }

  const lib::Library library = lib::make_default_library();
  std::vector<Run> runs;
  bool all_counters_match = true;

  for (const int factor : factors) {
    const benchgen::DesignProfile profile =
        benchgen::scaled_profiles(factor).front();
    util::Stopwatch generate_clock;
    const benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    const double generate_seconds = generate_clock.seconds();
    std::cout << profile.name << ": " << profile.register_cells
              << " registers, generated in " << generate_seconds << " s\n";

    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;

    double baseline_seconds = 0.0;
    const obs::CountersSnapshot* baseline_counters = nullptr;
    std::vector<obs::CountersSnapshot> snapshots;
    snapshots.reserve(jobs_values.size());
    for (const int jobs : jobs_values) {
      options.jobs = jobs;
      netlist::Design design = generated.design;  // fresh copy per run
      const mbr::FlowResult result =
          mbr::run_composition_flow(design, options);

      Run run;
      run.factor = factor;
      run.profile = profile.name;
      run.registers = profile.register_cells;
      run.generate_seconds = generate_seconds;
      run.jobs = jobs;
      run.flow_seconds = result.total_seconds;
      run.mbrs_created = result.mbrs_created;
      if (baseline_counters == nullptr) {
        baseline_seconds = result.total_seconds;
        snapshots.push_back(result.counters);
        baseline_counters = &snapshots.back();
        run.counters_match = true;
      } else {
        run.counters_match = result.counters == *baseline_counters;
      }
      all_counters_match = all_counters_match && run.counters_match;
      run.speedup = result.total_seconds > 0.0
                        ? baseline_seconds / result.total_seconds
                        : 0.0;
      for (const auto& [stage, stats] : result.stages)
        run.stage_seconds[stage] = stats.seconds;

      std::cout << "  jobs " << jobs << ": " << run.flow_seconds
                << " s, speedup " << run.speedup
                << (run.counters_match ? "" : "  COUNTERS DIVERGED") << "\n";
      runs.push_back(std::move(run));
    }
  }

  const char* env = std::getenv("MBRC_BENCH_JSON");
  const std::string out_path = env ? env : "BENCH_flow_scaling.json";
  std::ofstream out(out_path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1).kv("bench", "flow_scaling");
  w.kv("hardware_threads",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.kv("counters_bit_identical", all_counters_match);
  w.key("runs").begin_array();
  for (const Run& run : runs) {
    w.begin_object()
        .kv("profile", run.profile)
        .kv("factor", run.factor)
        .kv("registers", run.registers)
        .kv("generate_seconds", run.generate_seconds)
        .kv("jobs", run.jobs)
        .kv("flow_seconds", run.flow_seconds)
        .kv("speedup", run.speedup)
        .kv("mbrs_created", run.mbrs_created)
        .kv("counters_match", run.counters_match);
    w.key("stage_seconds").begin_object();
    for (const auto& [stage, seconds] : run.stage_seconds) w.kv(stage, seconds);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << out_path << "\n";

  // A divergent counter snapshot is a determinism bug, not a slow run.
  return all_counters_match ? 0 : 2;
}
