// Convergence study of the multi-objective bank/debank loop.
//
// For every (profile, cost-setting) pair the flow runs with the debank
// loop on and the per-iteration cost trajectory (combined cost, TNS, clock
// power, area) lands in the JSON. The bench is also the loop's executable
// contract:
//   - the accepted combined-cost trajectory must be monotone
//     non-increasing on every run (violation -> exit 2);
//   - one configuration re-runs at a different jobs value and the
//     deterministic counter snapshots must match bit-identically
//     (divergence -> exit 2).
//
// Profiles: the Table 1 designs D1..D4 plus the scenario pair (DM
// multi-clock, DP power-capped; benchgen::scenario_profiles). Cost
// settings: alpha-dominant (the paper's pure timing objective), balanced,
// and beta/gamma-dominant (power/area-capped).
//
// Knobs (all optional):
//   MBRC_DEBANK_SMOKE  when set: scenario profiles only, at reduced size
//                      (CI smoke; a few seconds instead of minutes)
//   MBRC_BENCH_JSON    output path (default BENCH_debank.json)
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "obs/json.hpp"

using namespace mbrc;

namespace {

struct Setting {
  std::string name;
  double alpha = 1.0, beta = 0.0, gamma = 0.0;
};

struct Run {
  std::string profile;
  std::string setting;
  mbr::CostModel cost;
  int registers = 0;
  int jobs = 0;
  mbr::FlowResult result;
  bool monotone = true;
};

// The monotone-cost guarantee: every *accepted* iteration must improve on
// the best cost it entered with (flow.cpp rejects and rolls back anything
// else, so a violation here is a flow bug, not a tuning issue).
bool trajectory_monotone(const mbr::FlowResult& result) {
  for (const auto& it : result.debank_iterations)
    if (it.accepted && !(it.cost_after < it.cost_before)) return false;
  return true;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MBRC_DEBANK_SMOKE") != nullptr;

  std::vector<benchgen::DesignProfile> profiles;
  if (!smoke) {
    const auto standard = benchgen::standard_profiles();
    profiles.assign(standard.begin(), standard.begin() + 4);  // D1..D4
  }
  for (benchgen::DesignProfile p : benchgen::scenario_profiles()) {
    if (smoke) p.register_cells /= 2;
    profiles.push_back(p);
  }

  const std::vector<Setting> settings = {
      {"alpha", 1.0, 0.0, 0.0},
      {"balanced", 1.0, 0.3, 0.05},
      {"beta_gamma", 0.02, 1.0, 0.3},
  };

  const lib::Library library = lib::make_default_library();
  std::vector<Run> runs;
  bool monotone_ok = true;
  bool determinism_ok = true;

  for (const benchgen::DesignProfile& profile : profiles) {
    const benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    std::cout << profile.name << ": " << profile.register_cells
              << " registers\n";

    for (const Setting& setting : settings) {
      mbr::FlowOptions options;
      options.timing.clock_period = generated.calibrated_clock_period;
      options.cost.alpha = setting.alpha;
      options.cost.beta = setting.beta;
      options.cost.gamma = setting.gamma;
      options.debank_loop = true;

      Run run;
      run.profile = profile.name;
      run.setting = setting.name;
      run.cost = options.cost;
      run.registers = profile.register_cells;
      run.jobs = options.jobs;
      {
        netlist::Design design = generated.design;  // fresh copy per run
        run.result = mbr::run_composition_flow(design, options);
      }
      run.monotone = trajectory_monotone(run.result);
      monotone_ok = monotone_ok && run.monotone;

      std::cout << "  " << setting.name << ": cost " << run.result.final_cost
                << ", tns " << run.result.before.tns << " -> "
                << run.result.after.tns << ", iterations "
                << run.result.debank_iterations.size()
                << (run.monotone ? "" : "  NON-MONOTONE") << "\n";

      // Jobs-invariance spot check on the first profile's alpha setting:
      // the deterministic outputs (counters, trajectory, final cost) must
      // be bit-identical at any thread count.
      if (&profile == &profiles.front() && setting.name == "alpha") {
        mbr::FlowOptions reran = options;
        reran.jobs = run.jobs == 1 ? 4 : 1;
        netlist::Design design = generated.design;
        const mbr::FlowResult other =
            mbr::run_composition_flow(design, reran);
        const bool same =
            other.counters == run.result.counters &&
            other.final_cost == run.result.final_cost &&
            other.debank_iterations.size() ==
                run.result.debank_iterations.size();
        determinism_ok = determinism_ok && same;
        if (!same)
          std::cout << "  jobs " << run.jobs << " vs " << reran.jobs
                    << ": DETERMINISM DIVERGED\n";
      }
      runs.push_back(std::move(run));
    }
  }

  const char* env = std::getenv("MBRC_BENCH_JSON");
  const std::string out_path = env ? env : "BENCH_debank.json";
  std::ofstream out(out_path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1).kv("bench", "debank_convergence");
  w.kv("smoke", smoke);
  w.kv("hardware_threads",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.kv("monotone_ok", monotone_ok);
  w.kv("determinism_ok", determinism_ok);
  w.key("runs").begin_array();
  for (const Run& run : runs) {
    w.begin_object()
        .kv("profile", run.profile)
        .kv("setting", run.setting)
        .kv("alpha", run.cost.alpha)
        .kv("beta", run.cost.beta)
        .kv("gamma", run.cost.gamma)
        .kv("registers", run.registers)
        .kv("monotone", run.monotone)
        .kv("final_cost", run.result.final_cost)
        .kv("mbrs_created", run.result.mbrs_created)
        .kv("tns_before", run.result.before.tns)
        .kv("tns_after", run.result.after.tns)
        .kv("wns_after", run.result.after.wns)
        .kv("clock_power_uw_before", run.result.before.clock_power_uw)
        .kv("clock_power_uw_after", run.result.after.clock_power_uw)
        .kv("area_before", run.result.before.design.area)
        .kv("area_after", run.result.after.design.area)
        .kv("flow_seconds", run.result.total_seconds);
    w.key("iterations").begin_array();
    for (const auto& it : run.result.debank_iterations) {
      w.begin_object()
          .kv("banks_split", it.banks_split)
          .kv("pieces_created", it.pieces_created)
          .kv("mbrs_created", it.mbrs_created)
          .kv("cost_before", it.cost_before)
          .kv("cost_after", it.cost_after)
          .kv("tns", it.tns)
          .kv("clock_power_uw", it.clock_power_uw)
          .kv("area", it.area)
          .kv("accepted", it.accepted)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << out_path << "\n";

  // Both failures are contract violations of the deterministic flow, not
  // slow runs.
  return monotone_ok && determinism_ok ? 0 : 2;
}
