// Reproduces Fig. 5: the breakdown of register bit-widths in each design
// before and after MBR composition. Expected shape (paper): mass moves
// toward the widest MBRs (8-bit, then 4-bit); D4, which starts 8-bit rich,
// changes least.
#include <iostream>
#include <map>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

namespace {

std::map<int, int> width_histogram(const netlist::Design& design) {
  std::map<int, int> histogram;
  for (netlist::CellId reg : design.registers())
    ++histogram[design.cell(reg).reg->bits];
  return histogram;
}

}  // namespace

int main() {
  const lib::Library library = lib::make_default_library();
  const std::vector<int> widths = {1, 2, 4, 8};

  std::vector<std::string> header = {"Design", "State"};
  for (int w : widths) header.push_back(std::to_string(w) + "-bit");
  header.push_back("total");
  util::Table table(header);

  for (const benchgen::DesignProfile& profile : benchgen::standard_profiles()) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);

    const auto before = width_histogram(generated.design);

    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    mbr::run_composition_flow(generated.design, options);

    const auto after = width_histogram(generated.design);

    const auto add = [&](const std::string& state,
                         const std::map<int, int>& histogram) {
      table.row().cell(profile.name).cell(state);
      int total = 0;
      for (int w : widths) {
        const auto it = histogram.find(w);
        const int count = it == histogram.end() ? 0 : it->second;
        table.cell(count);
        total += count;
      }
      table.cell(total);
    };
    add("before", before);
    add("after", after);
  }

  std::cout << "=== Fig. 5: MBR bit-widths before & after composition ===\n\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: counts shift toward 8-bit (and 4-bit) "
               "cells; D4 (already 8-bit rich) moves least.\n";
  return 0;
}
