// Ablation: decompose-and-recompose of pre-existing wide MBRs -- the
// paper's future-work proposal for designs like D4:
//
//   "MBR composition in designs that already contain a large number of
//    8-bit MBRs, like D4, doesn't provide significant reduction in the
//    clock tree capacitance. ... we plan in the future to consider the
//    decomposition of the initial 8-bit MBRs and their recomposition."
//
// This bench runs D4 (and D1 as a control) through the flow with the
// decomposition pre-pass off and on.
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main() {
  const lib::Library library = lib::make_default_library();
  const auto profiles = benchgen::standard_profiles();

  util::Table table({"Design", "Decompose", "Split", "TotRegs", "ClkCap(fF)",
                     "ClkCap save", "TNS(ns)", "OvflEdges"});

  for (const int index : {0, 3}) {  // D1 (control) and D4 (the target)
    for (const bool decompose : {false, true}) {
      benchgen::GeneratedDesign generated =
          benchgen::generate_design(library, profiles[index]);
      mbr::FlowOptions options;
      options.timing.clock_period = generated.calibrated_clock_period;
      options.decompose_wide_mbrs = decompose;
      options.decompose.min_slack = 0.02;
      const mbr::FlowResult r =
          mbr::run_composition_flow(generated.design, options);
      table.row()
          .cell(profiles[index].name)
          .cell(std::string(decompose ? "on" : "off"))
          .cell(r.decomposition.registers_split)
          .cell(r.after.design.total_registers)
          .cell(r.after.clock_cap, 0)
          .percent((r.before.clock_cap - r.after.clock_cap) /
                   r.before.clock_cap)
          .cell(r.after.tns, 1)
          .cell(r.after.overflow_edges);
    }
  }

  std::cout << "=== Ablation: decompose-and-recompose wide MBRs "
               "(paper future work) ===\n\n";
  table.print(std::cout);
  std::cout
      << "\nFinding: on these dense designs the pre-pass does NOT pay off --\n"
         "stranded pieces (one sibling merged away, the other left 4-bit)\n"
         "cost more clock capacitance than the cross-merges recover, even\n"
         "with the slack gate and the recombine-unused-pieces safety net.\n"
         "This is consistent with the paper deferring decomposition to\n"
         "future work; a partner-aware gate (split only when the pieces\n"
         "have guaranteed partners) is the missing ingredient.\n";
  return 0;
}
