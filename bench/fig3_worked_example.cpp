// Reproduces Fig. 3: the candidate MBRs of the six-register worked example
// (Figs. 1-2) with their placement-aware weights, and the ILP selections
// with incomplete MBRs disabled and enabled.
//
// Weights follow the paper's formula (Sec. 3.2): w = 1/b for clean
// candidates, b*2^n with n blockers, infinity (dropped) when n >= b.
// EXPERIMENTS.md discusses the two cells of the printed figure where the
// paper's table deviates from its own formula.
#include <iostream>
#include <map>

#include "mbr/candidates.hpp"
#include "mbr/composition.hpp"
#include "mbr/worked_example.hpp"
#include "util/table.hpp"

using namespace mbrc;

namespace {

std::string member_names(const std::vector<int>& nodes) {
  std::string s;
  for (int n : nodes) s += mbr::WorkedExample::node_name(n);
  return s;
}

void print_selection(const std::string& title,
                     const std::vector<mbr::Candidate>& candidates,
                     const ilp::SetPartitionResult& solved) {
  std::cout << title << " (objective " << solved.objective << "): ";
  for (int index : solved.chosen) {
    const mbr::Candidate& c = candidates[index];
    std::cout << member_names(c.nodes);
    if (c.is_incomplete()) std::cout << "(inc" << c.mapped_width << ")";
    std::cout << ' ';
  }
  std::cout << "-> " << solved.chosen.size() << " registers\n";
}

}  // namespace

int main() {
  const mbr::WorkedExample example = mbr::make_worked_example();
  const mbr::CompatibilityGraph& graph = example.graph;
  std::vector<int> subgraph(graph.node_count());
  for (int i = 0; i < graph.node_count(); ++i) subgraph[i] = i;
  const mbr::BlockerIndex blockers(graph);

  // Fig. 3 lists the incomplete candidates (AE, ACE) even though the flow's
  // 5% area rule would reject them ("In reality, incomplete register AE
  // would have been rejected since its area is significantly larger") -- so
  // this printer lifts the area-overhead cap to make them visible.
  mbr::EnumerationOptions with_incomplete;
  with_incomplete.allow_incomplete = true;
  with_incomplete.incomplete_area_overhead = 10.0;
  const auto enumeration = mbr::enumerate_candidates(
      graph, *example.library, blockers, subgraph, with_incomplete);

  // Group candidates by connected bits, like the figure's columns.
  std::map<int, std::vector<const mbr::Candidate*>> by_bits;
  for (const mbr::Candidate& c : enumeration.candidates)
    by_bits[c.bits].push_back(&c);

  std::cout << "=== Fig. 3: MBR candidates and their weights ===\n\n";
  util::Table table({"bits", "candidate", "blockers n", "weight w", "maps to"});
  for (const auto& [bits, list] : by_bits) {
    for (const mbr::Candidate* c : list) {
      table.row()
          .cell(bits)
          .cell(member_names(c->nodes))
          .cell(c->blockers)
          .cell(c->weight, 3)
          .cell(std::to_string(c->mapped_width) + "-bit" +
                (c->is_incomplete() ? " incomplete" : ""));
    }
  }
  table.print(std::cout);

  // Selections, as in the bottom band of Fig. 3.
  std::cout << '\n';
  mbr::EnumerationOptions no_incomplete;
  no_incomplete.allow_incomplete = false;
  const auto enum_complete = mbr::enumerate_candidates(
      graph, *example.library, blockers, subgraph, no_incomplete);
  print_selection("Incomplete disabled", enum_complete.candidates,
                  mbr::solve_subgraph(subgraph, enum_complete.candidates));
  print_selection("Incomplete enabled ", enumeration.candidates,
                  mbr::solve_subgraph(subgraph, enumeration.candidates));

  std::cout << "\nPaper: 6 registers reduce to 3 (e.g. {B,F}, {A,C,D}, E).\n";
  return 0;
}
