// Incremental vs full-rebuild timing for the useful-skew loop's query
// pattern: a fixed subset of registers (the newly composed MBRs in the real
// flow) gets its skews nudged every iteration, and the flow needs a fresh
// timing report after each nudge.
//
//   full:        run_sta() per iteration (build + propagate from scratch)
//   incremental: one TimingEngine build, then a dirty-cone repair per
//                iteration
//
// Both arms produce bit-identical reports (checked per iteration here and
// enforced by tests/sta_incremental_test.cpp); the bench measures only the
// runtime gap on the largest standard benchgen profile and writes the
// results as machine-readable JSON (BENCH_sta_incremental.json by default,
// or argv[1]).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "obs/json.hpp"
#include "runtime/thread_pool.hpp"
#include "sta/timing_engine.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace mbrc;

namespace {

constexpr int kIterations = 40;
constexpr int kSkewedRegisters = 32;  // "new MBR" subset the loop retunes

struct RunResult {
  int jobs = 0;
  double full_seconds = 0.0;
  double incremental_seconds = 0.0;  // includes the engine's initial build
  double speedup = 0.0;
  double avg_repaired_pins = 0.0;
  bool identical = true;
};

// The deterministic skew trajectory both arms replay: per iteration, every
// register of the subset moves to a fresh offset.
std::vector<sta::SkewMap> make_trajectory(const netlist::Design& design) {
  const auto registers = design.registers();
  std::vector<netlist::CellId> subset;
  const std::size_t stride =
      std::max<std::size_t>(1, registers.size() / kSkewedRegisters);
  for (std::size_t i = 0;
       i < registers.size() &&
       subset.size() < static_cast<std::size_t>(kSkewedRegisters);
       i += stride)
    subset.push_back(registers[i]);

  util::Rng rng(0x5ca1ed);
  std::vector<sta::SkewMap> trajectory;
  sta::SkewMap skew;
  for (int iter = 0; iter < kIterations; ++iter) {
    for (netlist::CellId reg : subset)
      skew[reg] = rng.uniform_real(-0.12, 0.12);
    trajectory.push_back(skew);
  }
  return trajectory;
}

RunResult run_at_jobs(const netlist::Design& design, double clock_period,
                      int jobs, const std::vector<sta::SkewMap>& trajectory) {
  RunResult r;
  r.jobs = jobs;

  sta::TimingOptions options;
  options.clock_period = clock_period;
  options.jobs = jobs;

  std::vector<double> full_wns;
  full_wns.reserve(trajectory.size());
  {
    util::Stopwatch clock;
    for (const sta::SkewMap& skew : trajectory)
      full_wns.push_back(sta::run_sta(design, options, skew).wns());
    r.full_seconds = clock.seconds();
  }

  {
    sta::TimingEngine engine(design, options);
    util::Stopwatch clock;
    std::size_t repaired = 0;
    for (std::size_t i = 0; i < trajectory.size(); ++i) {
      const sta::TimingReport& report = engine.update(trajectory[i]);
      repaired += engine.stats().last_repaired_pins;
      if (report.wns() != full_wns[i]) r.identical = false;
    }
    r.incremental_seconds = clock.seconds();
    r.avg_repaired_pins = static_cast<double>(repaired) /
                          static_cast<double>(trajectory.size());
  }

  r.speedup = r.incremental_seconds > 0.0
                  ? r.full_seconds / r.incremental_seconds
                  : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_sta_incremental.json";

  const lib::Library library = lib::make_default_library();
  const auto profiles = benchgen::standard_profiles();
  const benchgen::DesignProfile* largest = &profiles.front();
  for (const benchgen::DesignProfile& p : profiles)
    if (p.register_cells > largest->register_cells) largest = &p;
  const benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, *largest);

  const std::vector<sta::SkewMap> trajectory =
      make_trajectory(generated.design);

  std::vector<RunResult> runs;
  runs.push_back(run_at_jobs(generated.design,
                             generated.calibrated_clock_period, 1, trajectory));
  const int hw_jobs = runtime::default_jobs();
  if (hw_jobs > 1)
    runs.push_back(run_at_jobs(generated.design,
                               generated.calibrated_clock_period, hw_jobs,
                               trajectory));

  std::printf("sta_incremental: %s, %d pins, %d iterations x %d registers\n",
              largest->name.c_str(), generated.design.pin_count(), kIterations,
              kSkewedRegisters);
  std::printf("%6s %12s %12s %9s %14s %10s\n", "jobs", "full_s", "incr_s",
              "speedup", "repaired/iter", "identical");
  for (const RunResult& r : runs)
    std::printf("%6d %12.4f %12.4f %8.1fx %14.1f %10s\n", r.jobs,
                r.full_seconds, r.incremental_seconds, r.speedup,
                r.avg_repaired_pins, r.identical ? "yes" : "NO");

  std::ofstream out(out_path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1).kv("bench", "sta_incremental");
  w.key("design").begin_object();
  w.kv("profile", largest->name)
      .kv("register_cells", largest->register_cells)
      .kv("pins", generated.design.pin_count());
  w.end_object();
  w.kv("iterations", kIterations).kv("skewed_registers", kSkewedRegisters);
  w.key("runs").begin_array();
  for (const RunResult& r : runs) {
    w.begin_object()
        .kv("jobs", r.jobs)
        .kv("full_seconds", r.full_seconds)
        .kv("incremental_seconds", r.incremental_seconds)
        .kv("speedup", r.speedup)
        .kv("avg_repaired_pins", r.avg_repaired_pins)
        .kv("bit_identical", r.identical)
        .end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';

  bool ok = true;
  for (const RunResult& r : runs) ok = ok && r.identical && r.speedup >= 3.0;
  if (!ok)
    std::printf("FAIL: expected bit-identical reports and >= 3x speedup\n");
  return ok ? 0 : 1;
}
